"""Integration tests for the JobTracker on small simulated clusters."""

import pytest

from repro.cluster import presets
from repro.cluster.topology import Cluster
from repro.dfs import DistributedFileSystem
from repro.mapreduce import (
    JobAborted,
    JobPlan,
    JobTracker,
    MapInput,
    MapTaskSpec,
    ReduceTaskSpec,
    ReusedMapOutput,
)
from repro.mapreduce.jobtracker import JobFailed
from repro.mapreduce.metrics import RunMetrics
from repro.simcore import SeedSequenceRegistry, Simulator

MB = 1 << 20
BLOCK = 64 * MB


def make_env(n_nodes=4, slots=(1, 1), spec=None):
    sim = Simulator()
    spec = spec or presets.tiny(n_nodes, slots)
    cluster = Cluster(sim, spec, SeedSequenceRegistry(11))
    dfs = DistributedFileSystem(cluster, BLOCK)
    metrics = RunMetrics()
    jt = JobTracker(cluster, dfs, metrics)
    return sim, cluster, dfs, metrics, jt


def simple_plan(cluster, maps_per_node=2, n_reducers=None, kind="initial",
                recovery_mode="abort", replication=1, ratio=1.0):
    """A balanced job: each node runs ``maps_per_node`` local maps."""
    n = cluster.n_nodes
    n_reducers = n_reducers or n
    tasks = []
    tid = 0
    for node in range(n):
        for _ in range(maps_per_node):
            tasks.append(MapTaskSpec(
                tid, MapInput(BLOCK, (node,)), output_size=BLOCK * ratio))
            tid += 1
    reducers = [ReduceTaskSpec(i, i) for i in range(n_reducers)]
    return JobPlan(1, "job1", kind, tasks, reducers, n_reducers,
                   recovery_mode=recovery_mode,
                   output_replication=replication)


def run_to_completion(sim, jt, plan):
    holder = {}

    def driver():
        holder["completion"] = yield from jt.run_job(plan)

    sim.process(driver())
    sim.run()
    return holder.get("completion")


# ----------------------------------------------------------------- basics
def test_balanced_job_completes_with_expected_structure():
    sim, cluster, dfs, metrics, jt = make_env()
    plan = simple_plan(cluster)
    completion = run_to_completion(sim, jt, plan)
    assert completion is not None
    assert completion.ordinal == 1
    assert sorted(completion.partition_pieces) == [0, 1, 2, 3]
    for partition, pieces in completion.partition_pieces.items():
        assert len(pieces) == 1
        node, size = pieces[0]
        # 8 maps x 64MB over 4 partitions = 128MB per partition
        assert size == pytest.approx(2 * BLOCK)
        del node, partition
    assert len(completion.map_output_nodes) == 8
    job = metrics.jobs[0]
    assert job.outcome == "done"
    assert len(job.task_durations("map")) == 8
    assert len(job.task_durations("reduce")) == 4


def test_output_files_written_with_replication():
    sim, cluster, dfs, metrics, jt = make_env()
    plan = simple_plan(cluster, replication=2, recovery_mode="hadoop")
    completion = run_to_completion(sim, jt, plan)
    for files in completion.partition_files.values():
        for name in files:
            meta = dfs.meta(name)
            for block in meta.blocks:
                assert block.replication == 2


def test_more_map_waves_longer_map_phase():
    def map_phase(maps_per_node):
        sim, cluster, dfs, metrics, jt = make_env()
        plan = simple_plan(cluster, maps_per_node=maps_per_node)
        run_to_completion(sim, jt, plan)
        maps = [t for t in metrics.jobs[0].tasks if t.task_type == "map"]
        return max(t.end for t in maps) - min(t.start for t in maps)

    assert map_phase(4) > map_phase(2) * 1.5


def test_slots_limit_concurrency_into_waves():
    sim, cluster, dfs, metrics, jt = make_env(slots=(1, 1))
    plan = simple_plan(cluster, maps_per_node=3)
    run_to_completion(sim, jt, plan)
    # With 1 mapper slot, a node's 3 maps never overlap.
    job = metrics.jobs[0]
    by_node = {}
    for t in job.tasks:
        if t.task_type == "map":
            by_node.setdefault(t.node, []).append((t.start, t.end))
    for intervals in by_node.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-6
            del s1, e2


def test_replication_3_slower_than_1():
    def total(replication):
        sim, cluster, dfs, metrics, jt = make_env()
        mode = "hadoop" if replication > 1 else "abort"
        plan = simple_plan(cluster, replication=replication,
                           recovery_mode=mode)
        run_to_completion(sim, jt, plan)
        return metrics.jobs[0].duration

    assert total(3) > total(1) * 1.15


def test_reused_map_outputs_skip_map_work():
    """A recomputation reusing most map outputs is much faster."""
    sim, cluster, dfs, metrics, jt = make_env()
    full = simple_plan(cluster)
    run_to_completion(sim, jt, full)
    t_full = metrics.jobs[0].duration

    sim2, cluster2, dfs2, metrics2, jt2 = make_env()
    reused = [ReusedMapOutput(t.task_id, t.input.locations[0], t.output_size)
              for t in full.map_tasks[2:]]
    plan = JobPlan(1, "job1/recomp", "recompute",
                   full.map_tasks[:2], [ReduceTaskSpec(0, 0)], 4,
                   reused_map_outputs=reused)
    run_to_completion(sim2, jt2, plan)
    t_recomp = metrics2.jobs[0].duration
    # Less map work and only 1 of 4 reducers -> strictly faster overall,
    # and the executed map volume shrinks 4x.
    assert t_recomp < t_full
    full_map_time = metrics.jobs[0].task_durations("map").sum()
    recomp_map_time = metrics2.jobs[0].task_durations("map").sum()
    assert recomp_map_time < full_map_time / 2


def test_split_reduce_tasks_cover_partition():
    sim, cluster, dfs, metrics, jt = make_env()
    n = cluster.n_nodes
    splits = [ReduceTaskSpec(i, 0, fraction=1.0 / n, split_index=i,
                             n_splits=n) for i in range(n)]
    tasks = [MapTaskSpec(100 + i, MapInput(BLOCK, (i,)), BLOCK)
             for i in range(n)]
    plan = JobPlan(1, "j/split", "recompute", tasks, splits, n)
    completion = run_to_completion(sim, jt, plan)
    pieces = completion.partition_pieces[0]
    assert len(pieces) == n
    total = sum(b for _, b in pieces)
    # whole partition = total map output / n_partitions
    assert total == pytest.approx(n * BLOCK / n)
    assert len({node for node, _ in pieces}) == n  # spread over all nodes


def test_empty_plan_completes_instantly():
    sim, cluster, dfs, metrics, jt = make_env()
    plan = JobPlan(1, "noop", "recompute", [], [], 1)
    completion = run_to_completion(sim, jt, plan)
    assert completion.duration == pytest.approx(0.0)


def test_slow_shuffle_latency_applied():
    """SLOW SHUFFLE: each reduce task pays latency * transfers / copiers
    (8 maps, 5 copier threads, 10 s -> at least +16 s on the critical
    wave)."""
    spec = presets.tiny(4).with_slow_shuffle(10.0)

    def total(cluster_spec):
        sim, cluster, dfs, metrics, jt = make_env(spec=cluster_spec)
        plan = simple_plan(cluster)
        run_to_completion(sim, jt, plan)
        return metrics.jobs[0].duration

    fast = total(presets.tiny(4))
    slow = total(spec)
    # the copier delays overlap the map phase (transfers happen as mappers
    # finish), so the job can't end before the latency budget elapses, and
    # must end later than the latency-free run
    latency_budget = 10.0 * 8 / spec.node.reduce_parallel_copies
    assert slow >= latency_budget
    assert slow > fast + 0.5 * latency_budget


# --------------------------------------------------------------- failures
def test_abort_mode_raises_jobaborted_after_detection():
    sim, cluster, dfs, metrics, jt = make_env()
    plan = simple_plan(cluster, maps_per_node=8)
    result = {}

    def driver():
        try:
            yield from jt.run_job(plan)
        except JobAborted as exc:
            result["aborted_at"] = sim.now
            result["dead"] = exc.dead_nodes

    def killer():
        yield sim.timeout(5.0)
        cluster.kill_node(2)

    sim.process(driver())
    sim.process(killer())
    sim.run()
    detect = cluster.spec.failure_detection_timeout
    assert result["aborted_at"] == pytest.approx(5.0 + detect)
    assert result["dead"] == [2]
    assert metrics.jobs[0].outcome == "aborted"


def test_abort_discards_partial_outputs():
    """Reducers that completed before the cancellation have their outputs
    deleted: RCMP discards partial results of the aborted job (§V-A)."""
    def build_plan():
        tasks = [MapTaskSpec(i, MapInput(BLOCK, (i % 4,)), BLOCK)
                 for i in range(4)]
        reducers = [ReduceTaskSpec(i, i % 4) for i in range(8)]  # 2 waves
        return JobPlan(1, "j", "initial", tasks, reducers, 8)

    # Calibrate: kill between wave-1 completion and job completion, so some
    # reducer outputs exist when the cancellation lands.
    sim0, _cluster0, _dfs0, metrics0, jt0 = make_env()
    run_to_completion(sim0, jt0, build_plan())
    reduce_ends = sorted(t.end for t in metrics0.jobs[0].tasks
                         if t.task_type == "reduce")
    kill_at = (reduce_ends[3] + reduce_ends[-1]) / 2  # after wave 1

    sim, cluster, dfs, metrics, jt = make_env()
    plan = build_plan()
    outcome = {}

    def driver():
        try:
            yield from jt.run_job(plan)
            outcome["done"] = True
        except JobAborted:
            outcome["aborted"] = True

    def killer():
        yield sim.timeout(kill_at)
        cluster.kill_node(0)

    sim.process(driver())
    sim.process(killer())
    sim.run()
    assert outcome.get("aborted"), "job must have been cancelled"
    completed_reduces = [t for t in metrics.jobs[0].tasks
                         if t.task_type == "reduce" and t.outcome == "done"]
    assert completed_reduces, "some reducers should finish before the abort"
    leftovers = [f for f in dfs.files if f.startswith("job1/")]
    assert leftovers == []


def test_hadoop_mode_recovers_within_job():
    sim, cluster, dfs, metrics, jt = make_env()
    # Inputs double-replicated so the dead node's inputs survive elsewhere.
    n = cluster.n_nodes
    tasks = []
    tid = 0
    for node in range(n):
        for _ in range(2):
            locs = (node, (node + 1) % n)
            tasks.append(MapTaskSpec(tid, MapInput(BLOCK, locs), BLOCK))
            tid += 1
    reducers = [ReduceTaskSpec(i, i) for i in range(n)]
    plan = JobPlan(1, "j", "initial", tasks, reducers, n,
                   recovery_mode="hadoop", output_replication=2)
    holder = {}

    def driver():
        holder["completion"] = yield from jt.run_job(plan)

    def killer():
        yield sim.timeout(3.0)
        cluster.kill_node(1)

    sim.process(driver())
    sim.process(killer())
    sim.run()
    completion = holder["completion"]
    assert completion is not None
    # All partitions produced, none on the dead node.
    assert sorted(completion.partition_pieces) == list(range(n))
    for pieces in completion.partition_pieces.values():
        for node, _ in pieces:
            assert node != 1
    # Redone maps ran somewhere alive.
    for node in completion.map_output_nodes.values():
        assert node != 1
    assert metrics.jobs[0].outcome == "done"


def test_hadoop_mode_failure_costs_time():
    def total(kill):
        sim, cluster, dfs, metrics, jt = make_env()
        n = cluster.n_nodes
        tasks = [MapTaskSpec(i, MapInput(BLOCK, (i % n, (i + 1) % n)), BLOCK)
                 for i in range(2 * n)]
        reducers = [ReduceTaskSpec(i, i) for i in range(n)]
        plan = JobPlan(1, "j", "initial", tasks, reducers, n,
                       recovery_mode="hadoop", output_replication=2)

        def driver():
            yield from jt.run_job(plan)

        sim.process(driver())
        if kill:
            def killer():
                yield sim.timeout(3.0)
                cluster.kill_node(1)

            sim.process(killer())
        sim.run()
        return metrics.jobs[0].duration

    assert total(kill=True) > total(kill=False)


def test_hadoop_mode_unrecoverable_when_no_replica():
    """Single-replicated input on the dead node: REPL-1-like data loss."""
    sim, cluster, dfs, metrics, jt = make_env()
    tasks = [MapTaskSpec(i, MapInput(BLOCK, (i,)), BLOCK) for i in range(4)]
    reducers = [ReduceTaskSpec(0, 0)]
    plan = JobPlan(1, "j", "initial", tasks, reducers, 1,
                   recovery_mode="hadoop", output_replication=2)
    result = {}

    def driver():
        try:
            yield from jt.run_job(plan)
        except JobFailed:
            result["failed"] = True

    def killer():
        yield sim.timeout(1.0)
        cluster.kill_node(3)

    sim.process(driver())
    sim.process(killer())
    sim.run()
    assert result.get("failed")


def test_ordinals_increment_across_runs():
    sim, cluster, dfs, metrics, jt = make_env()
    plan1 = simple_plan(cluster, maps_per_node=1)

    def driver():
        yield from jt.run_job(plan1)
        plan2 = JobPlan(2, "job2", "initial",
                        [MapTaskSpec(0, MapInput(BLOCK, (0,)), BLOCK)],
                        [ReduceTaskSpec(0, 0)], 1)
        yield from jt.run_job(plan2)

    sim.process(driver())
    sim.run()
    assert [j.ordinal for j in metrics.jobs] == [1, 2]
    assert metrics.total_runtime == pytest.approx(sim.now)
