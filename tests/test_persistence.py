"""Tests for the persisted map-output store."""

import pytest

from repro.core.persistence import MapOutputMeta, PersistedStore
from repro.mapreduce.types import PartitionRef


def meta(job=1, tid=0, node=0, size=100.0, origin=None):
    return MapOutputMeta(job, tid, node, size, origin)


def test_register_and_get():
    store = PersistedStore()
    store.register(meta(1, 0, node=2))
    assert store.get(1, 0).node == 2
    assert store.get(1, 1) is None
    assert len(store) == 1


def test_register_replaces_and_reaccounts():
    store = PersistedStore()
    store.register(meta(1, 0, node=2, size=100.0))
    store.register(meta(1, 0, node=3, size=50.0))
    assert store.get(1, 0).node == 3
    assert store.bytes_on_node[2] == pytest.approx(0.0)
    assert store.bytes_on_node[3] == pytest.approx(50.0)
    assert store.total_bytes == pytest.approx(50.0)


def test_drop_node_loses_only_that_node():
    store = PersistedStore()
    store.register(meta(1, 0, node=0))
    store.register(meta(1, 1, node=1))
    store.register(meta(2, 0, node=1))
    report = store.drop_node(1)
    assert {m.key for m in report.lost_map_outputs} == {(1, 1), (2, 0)}
    assert report.jobs_touched == {1, 2}
    assert store.get(1, 0) is not None
    assert store.get(1, 1) is None
    assert store.bytes_on_node[1] == 0.0


def test_invalidate_by_origin_is_the_fig5_rule():
    store = PersistedStore()
    p = PartitionRef(1, 3)
    other = PartitionRef(1, 4)
    store.register(meta(2, 0, node=0, origin=p))
    store.register(meta(2, 1, node=1, origin=p))
    store.register(meta(2, 2, node=2, origin=other))
    victims = store.invalidate_by_origin(p)
    assert {v.key for v in victims} == {(2, 0), (2, 1)}
    assert store.get(2, 2) is not None
    assert len(store) == 1


def test_reclaim_jobs_frees_old_entries():
    store = PersistedStore()
    for j in (1, 2, 3):
        store.register(meta(j, 0, node=j, size=10.0))
    freed = store.reclaim_jobs(2)
    assert freed == pytest.approx(20.0)
    assert store.get(1, 0) is None
    assert store.get(2, 0) is None
    assert store.get(3, 0) is not None


def test_entries_for_job():
    store = PersistedStore()
    store.register(meta(1, 0))
    store.register(meta(1, 5))
    store.register(meta(2, 0))
    assert sorted(store.entries_for_job(1)) == [0, 5]


def test_clear_resets_everything():
    store = PersistedStore()
    store.register(meta(1, 0, size=42.0))
    store.clear()
    assert len(store) == 0
    assert store.total_bytes == 0.0
