"""Tests for the multi-tenant chain service and the coordinator
lifecycle fixes that enable it.

Fast tests cover the lifecycle regressions (idempotent shutdown,
parallel reaping, the configurable startup deadline), admission-policy
ordering on a live pool, chain-scoped storage paths, and the MTBF
arrival process.  The ``slow`` marker guards the heavier end-to-end
scenarios — concurrent chains under a kill, respawn, and the TCP front
door — which CI runs in the ``runtime-smoke`` job.

Every end-to-end assertion compares a chain's checksum byte-for-byte
against the failure-free in-process :class:`LocalCluster` reference:
multiplexing chains over shared workers must never change a single
byte of any chain's output, kills or not.
"""

import functools
import json
import multiprocessing
import socket
import threading
import time

import pytest

from repro.localexec import LocalCluster, LocalJobConfig
from repro.runtime.coordinator import (
    Coordinator,
    RuntimeConfig,
    WorkerPool,
    _Link,
)
from repro.runtime.service import (
    DONE,
    ChainService,
    MTBFKills,
    request,
)
from repro.runtime.storage import NodeStore, chain_checksum

TINY = LocalJobConfig(n_jobs=1, n_partitions=2, records_per_node=8,
                      records_per_block=8, seed=0)


@functools.lru_cache(maxsize=None)
def reference_checksum(chain: LocalJobConfig, n_nodes: int = 4) -> str:
    cluster = LocalCluster(n_nodes, chain)
    for job in range(1, chain.n_jobs + 1):
        cluster.run_job(job)
    return chain_checksum(cluster.final_output())


# --------------------------------------------------- lifecycle bugfixes
def test_shutdown_is_idempotent(tmp_path):
    """Regression: shutdown ran its teardown twice (e.g. explicitly and
    then again from the context manager), re-walking dead links."""
    config = RuntimeConfig(n_nodes=2, chain=TINY)
    before = len(multiprocessing.active_children())
    with Coordinator(config, tmp_path / "c") as coord:
        coord.shutdown()
        coord.shutdown()  # second call must be a clean no-op
    # the context manager's exit was call number three
    assert len(multiprocessing.active_children()) == before


def test_failed_start_reaps_workers_and_allows_shutdown(tmp_path,
                                                        monkeypatch):
    """A start() that fails mid-fork must reap the workers it already
    forked, and a later shutdown() must still be safe."""
    import repro.runtime.coordinator as coord_mod

    def dies_instantly(node, *args, **kwargs):
        raise SystemExit(1)

    monkeypatch.setattr(coord_mod, "worker_main", dies_instantly)
    before = len(multiprocessing.active_children())
    config = RuntimeConfig(n_nodes=2, chain=TINY)
    coord = Coordinator(config, tmp_path / "c")
    with pytest.raises(RuntimeError, match="died during startup"):
        coord.start()
    assert len(multiprocessing.active_children()) == before
    coord.shutdown()  # idempotent after the failure path's cleanup


class _SlowReapProc:
    """A fake worker process whose join costs real wall time."""

    def __init__(self, cost: float):
        self.cost = cost
        self._alive = True

    def is_alive(self) -> bool:
        return self._alive

    def join(self, timeout=None):
        time.sleep(self.cost)
        self._alive = False

    def terminate(self):
        self._alive = False

    def kill(self):
        self._alive = False


class _NullPipe:
    def send(self, msg):
        pass

    def close(self):
        pass


def test_shutdown_joins_workers_in_parallel(tmp_path):
    """Regression: shutdown joined links sequentially (up to 3 x 2 s
    *per link*); with parallel reapers teardown is O(slowest worker)."""
    pool = WorkerPool(RuntimeConfig(n_nodes=8, chain=TINY),
                      tmp_path / "c")
    pool._started = True
    for node in range(8):
        pool._links[node] = _Link(node, _SlowReapProc(0.2), _NullPipe(),
                                  _NullPipe())
    t0 = time.monotonic()
    pool.shutdown()
    wall = time.monotonic() - t0
    # serial joins would cost 8 x 0.2 s = 1.6 s minimum
    assert wall < 1.0, f"teardown took {wall:.2f}s — joins are serial"
    assert all(not link.proc.is_alive() for link in pool._links.values())


def test_startup_timeout_config_validation():
    with pytest.raises(ValueError, match="startup_timeout"):
        RuntimeConfig(startup_timeout=0)
    with pytest.raises(ValueError, match="startup_timeout"):
        RuntimeConfig(startup_timeout=-1.0)
    with pytest.raises(ValueError, match="must exceed heartbeat_expiry"):
        RuntimeConfig(heartbeat_expiry=1.0, startup_timeout=0.5)
    # a valid override round-trips
    assert RuntimeConfig(startup_timeout=7.5).startup_timeout == 7.5


def test_startup_timeout_is_enforced(tmp_path, monkeypatch):
    """Regression: the worker-ready deadline was hardcoded at 30 s; a
    configured startup_timeout must bound how long a silent (alive but
    never-ready) worker can stall start()."""
    import repro.runtime.coordinator as coord_mod

    def never_ready(node, *args, **kwargs):
        time.sleep(60)

    monkeypatch.setattr(coord_mod, "worker_main", never_ready)
    config = RuntimeConfig(n_nodes=2, chain=TINY, startup_timeout=0.4)
    before = len(multiprocessing.active_children())
    coord = Coordinator(config, tmp_path / "c")
    t0 = time.monotonic()
    with pytest.raises(RuntimeError, match="never reported ready"):
        coord.start()
    assert time.monotonic() - t0 < 10.0  # deadline + reaping, not 30 s
    assert len(multiprocessing.active_children()) == before


# ----------------------------------------------------- chain namespacing
def test_node_store_chain_namespace(tmp_path):
    plain = NodeStore(tmp_path, 0)
    scoped = NodeStore(tmp_path, 0, chain="c0001")
    assert plain.dir == tmp_path / "node000"
    assert scoped.dir == tmp_path / "node000" / "chains" / "c0001"
    # for_chain returns self when already scoped, a sibling otherwise
    assert scoped.for_chain("c0001") is scoped
    assert plain.for_chain(None) is plain
    other = scoped.for_chain("c0002")
    assert other.dir == tmp_path / "node000" / "chains" / "c0002"


# ------------------------------------------------------- MTBF arrivals
def test_mtbf_kills_validation():
    with pytest.raises(ValueError):
        MTBFKills(0)
    with pytest.raises(ValueError):
        MTBFKills(10.0, min_alive=0)


def test_mtbf_kills_respects_min_alive_floor():
    kills = MTBFKills(mtbf=1.0, seed=1, min_alive=2)
    assert kills.due(0.0, {0, 1, 2, 3}) == []  # first call arms the clock
    victims = kills.due(50.0, {0, 1, 2, 3})  # ~50 arrivals queued up
    assert len(victims) == 2  # floor: never below min_alive survivors
    assert set(victims) <= {0, 1, 2, 3}
    assert kills.due(50.0, {0, 1}) == []  # at the floor: skipped entirely


def test_mtbf_kills_is_seeded():
    a = MTBFKills(mtbf=1.0, seed=7, min_alive=1)
    b = MTBFKills(mtbf=1.0, seed=7, min_alive=1)
    alive = set(range(8))
    a.due(0.0, alive), b.due(0.0, alive)
    assert a.due(20.0, alive) == b.due(20.0, alive)


# ---------------------------------------------------- admission policies
def test_submit_validates_at_submission_time(tmp_path):
    config = RuntimeConfig(n_nodes=2, chain=TINY)
    service = ChainService(config, tmp_path / "svc")
    with pytest.raises(ValueError, match="unknown strategy"):
        service.submit(chain=TINY, strategy="nonsense")
    with pytest.raises(ValueError, match="admission policy"):
        ChainService(config, tmp_path / "svc2", policy="lottery")


def test_fifo_admission_runs_chains_in_submission_order(tmp_path):
    config = RuntimeConfig(n_nodes=2, chain=TINY, task_slots=2)
    with ChainService(config, tmp_path / "svc",
                      max_concurrent=1) as service:
        jobs = [service.submit(chain=LocalJobConfig(
            n_jobs=1, n_partitions=2, records_per_node=8,
            records_per_block=8, seed=s)) for s in (1, 2, 3)]
        for job in jobs:
            service.wait(job.id, timeout=60)
        assert all(job.state == DONE for job in jobs)
        # with max_concurrent=1, start order is the admission order
        starts = [job.started for job in jobs]
        assert starts == sorted(starts)
        for job, seed in zip(jobs, (1, 2, 3)):
            assert job.report.checksum == reference_checksum(
                LocalJobConfig(n_jobs=1, n_partitions=2,
                               records_per_node=8, records_per_block=8,
                               seed=seed), 2)


def test_fair_share_admits_least_loaded_tenant_first(tmp_path):
    """Three chains from alice then one from bob: after alice's first
    chain, fair-share admits bob's before alice's backlog."""
    config = RuntimeConfig(n_nodes=2, chain=TINY, task_slots=2)
    with ChainService(config, tmp_path / "svc", policy="fair",
                      max_concurrent=1) as service:
        a1 = service.submit(chain=TINY, tenant="alice")
        a2 = service.submit(chain=TINY, tenant="alice")
        a3 = service.submit(chain=TINY, tenant="alice")
        b1 = service.submit(chain=TINY, tenant="bob")
        for job in (a1, a2, a3, b1):
            service.wait(job.id, timeout=60)
        order = sorted((a1, a2, a3, b1), key=lambda j: j.started)
        assert [j.id for j in order] == [a1.id, b1.id, a2.id, a3.id]


# ------------------------------------------------- end-to-end scenarios
def test_service_runs_one_chain_end_to_end(tmp_path):
    chain = LocalJobConfig(n_jobs=2, n_partitions=2, records_per_node=16,
                           records_per_block=8, seed=5)
    config = RuntimeConfig(n_nodes=2, chain=TINY, task_slots=2)
    with ChainService(config, tmp_path / "svc") as service:
        job = service.submit(chain=chain)
        service.wait(job.id, timeout=60)
        assert job.state == DONE, job.error
        assert job.report.chain_id == job.id
        assert job.report.checksum == reference_checksum(chain, 2)
        # the chain's files live under its namespace on each node
        scoped = tmp_path / "svc" / "node000" / "chains" / job.id
        assert scoped.is_dir()


@pytest.mark.slow
def test_concurrent_chains_all_match_references(tmp_path):
    """>= 3 chains multiplexed over one pool, every checksum exact."""
    chains = [LocalJobConfig(n_jobs=2, n_partitions=4,
                             records_per_node=32, records_per_block=8,
                             seed=s) for s in (1, 2, 3)]
    config = RuntimeConfig(n_nodes=4, chain=TINY, task_slots=2)
    with ChainService(config, tmp_path / "svc",
                      max_concurrent=3) as service:
        jobs = [service.submit(chain=c) for c in chains]
        for job, chain in zip(jobs, chains):
            service.wait(job.id, timeout=120)
            assert job.state == DONE, job.error
            assert job.report.checksum == reference_checksum(chain)
        assert service.running_peak >= 3


def _wait_for(predicate, deadline=60.0, interval=0.005):
    t_end = time.monotonic() + deadline
    while time.monotonic() < t_end:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition never became true")


@pytest.mark.slow
def test_kill_cascades_only_chains_with_pieces_on_dead_node(tmp_path):
    """Per-chain recovery isolation: chain A places reducer pieces on
    every node (4 partitions), chain B only on nodes 0-1 (2
    partitions).  Killing node 3 mid-flight must make A recompute and
    leave B's job timeline untouched — and both stay byte-exact."""
    chain_a = LocalJobConfig(n_jobs=3, n_partitions=4,
                             records_per_node=48, records_per_block=16,
                             seed=7)
    chain_b = LocalJobConfig(n_jobs=4, n_partitions=2,
                             records_per_node=48, records_per_block=16,
                             seed=8)
    config = RuntimeConfig(n_nodes=4, chain=TINY, task_slots=2)
    with ChainService(config, tmp_path / "svc",
                      max_concurrent=2) as service:
        job_a = service.submit(chain=chain_a)
        job_b = service.submit(chain=chain_b)
        # kill once both chains have committed job 1 (A's pieces now sit
        # on node 3; B's never will) and are still mid-chain
        _wait_for(lambda: job_a.run is not None and job_b.run is not None
                  and job_a.run.completed_jobs >= 1
                  and job_b.run.completed_jobs >= 1)
        service.pool.kill_node(3)
        service.wait(job_a.id, timeout=120)
        service.wait(job_b.id, timeout=120)
        assert job_a.state == DONE, job_a.error
        assert job_b.state == DONE, job_b.error
        kinds_a = [k for _, k, _ in job_a.report.job_times]
        kinds_b = [k for _, k, _ in job_b.report.job_times]
        assert "recompute" in kinds_a or "rerun" in kinds_a
        assert kinds_b == ["run"] * chain_b.n_jobs  # uninterrupted
        assert job_a.report.checksum == reference_checksum(chain_a)
        assert job_b.report.checksum == reference_checksum(chain_b)


@pytest.mark.slow
def test_replace_dead_respawns_and_restores_capacity(tmp_path):
    """With replace_dead, a killed node id rejoins the pool and later
    chains use the full width again."""
    chain = LocalJobConfig(n_jobs=2, n_partitions=4,
                           records_per_node=32, records_per_block=8,
                           seed=4)
    config = RuntimeConfig(n_nodes=4, chain=TINY, task_slots=2)
    with ChainService(config, tmp_path / "svc", max_concurrent=2,
                      replace_dead=True) as service:
        job = service.submit(chain=chain)
        _wait_for(lambda: job.run is not None
                  and job.run.completed_jobs >= 1)
        service.pool.kill_node(2)
        service.wait(job.id, timeout=120)
        assert job.state == DONE, job.error
        assert job.report.checksum == reference_checksum(chain)
        _wait_for(lambda: service.pool.alive == {0, 1, 2, 3})
        follow_up = service.submit(chain=LocalJobConfig(
            n_jobs=1, n_partitions=4, records_per_node=16,
            records_per_block=8, seed=6))
        service.wait(follow_up.id, timeout=120)
        assert follow_up.state == DONE, follow_up.error
        assert follow_up.report.checksum == reference_checksum(
            LocalJobConfig(n_jobs=1, n_partitions=4,
                           records_per_node=16, records_per_block=8,
                           seed=6))


@pytest.mark.slow
def test_tcp_front_door_submit_status_wait(tmp_path):
    chain_req = {"n_jobs": 1, "n_partitions": 2, "records_per_node": 8,
                 "records_per_block": 8, "seed": 9}
    config = RuntimeConfig(n_nodes=2, chain=TINY, task_slots=2)
    with ChainService(config, tmp_path / "svc") as service:
        port = service.serve(port=0)
        assert request(port, {"op": "ping"})["ok"]
        chain_id = request(port, {"op": "submit",
                                  "chain": chain_req})["id"]
        job = request(port, {"op": "wait", "id": chain_id,
                             "timeout": 60})["job"]
        assert job["state"] == "done"
        assert job["report"]["checksum"] == reference_checksum(
            LocalJobConfig(**chain_req), 2)
        status = request(port, {"op": "status"})["status"]
        assert status["alive"] == [0, 1]
        assert any(j["id"] == chain_id for j in status["jobs"])
        # a malformed submission is refused over the wire, not crashed on
        with pytest.raises(RuntimeError, match="unknown strategy"):
            request(port, {"op": "submit", "chain": chain_req,
                           "overrides": {"strategy": "bogus"}})
        request(port, {"op": "shutdown"})
        assert service.shutdown_requested.wait(5.0)


def _raw_request(port: int, raw: bytes) -> dict:
    """Send raw bytes to the front door; return the decoded reply
    without the ok-check :func:`request` applies."""
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=10.0) as conn:
        conn.sendall(raw)
        data = b""
        while not data.endswith(b"\n"):
            got = conn.recv(65536)
            if not got:
                break
            data += got
    return json.loads(data)


def test_tcp_front_door_error_paths(tmp_path, monkeypatch):
    """Garbage on the wire gets a structured error reply, never a
    crashed handler thread or a dropped connection.  The front door
    needs no running workers, so this exercises it pool-less."""
    import repro.runtime.service as service_mod

    config = RuntimeConfig(n_nodes=2, chain=TINY, task_slots=1)
    service = ChainService(config, tmp_path / "svc")
    port = service.serve(port=0)
    try:
        # malformed JSON (and the empty request degenerate case)
        reply = _raw_request(port, b"{this is not json\n")
        assert reply["ok"] is False and "JSONDecodeError" in reply["error"]
        reply = _raw_request(port, b"\n")
        assert reply["ok"] is False

        # valid JSON, unknown op
        reply = _raw_request(port, b'{"op": "frobnicate"}\n')
        assert reply == {"ok": False, "error": "unknown op 'frobnicate'"}

        # oversized payload: refused with the limit in the message, and
        # the reply still arrives even though the request was drained
        monkeypatch.setattr(service_mod, "MAX_REQUEST_BYTES", 4096)
        huge = (b'{"op": "ping", "pad": "' + b"x" * 8192 + b'"}\n')
        reply = _raw_request(port, huge)
        assert reply["ok"] is False
        assert "request exceeds 4096 bytes" in reply["error"]

        # the door still works after every abuse above
        assert _raw_request(port, b'{"op": "ping"}\n') == {"ok": True}
    finally:
        service._stop.set()
        service._server.close()


@pytest.mark.slow
def test_service_mtbf_faults_fire_and_chains_survive(tmp_path):
    """A service under seeded MTBF arrivals keeps completing chains
    byte-exactly (min_alive floors the carnage)."""
    chain = LocalJobConfig(n_jobs=3, n_partitions=4,
                           records_per_node=32, records_per_block=8,
                           seed=3)
    config = RuntimeConfig(n_nodes=4, chain=TINY, task_slots=2)
    # seed 1 @ mtbf 0.8: first arrival ~0.12 s in — guaranteed to land
    # while the chains are still running, however fast the host
    kills = MTBFKills(mtbf=0.8, seed=1, min_alive=2)
    with ChainService(config, tmp_path / "svc", faults=kills,
                      max_concurrent=2) as service:
        jobs = [service.submit(chain=chain) for _ in range(2)]
        for job in jobs:
            service.wait(job.id, timeout=180)
            assert job.state == DONE, job.error
            assert job.report.checksum == reference_checksum(chain)
        assert len(service.pool.deaths) >= 1  # the arrivals really fired
        assert len(service.pool.alive) >= 2


def test_drain_shutdown_fails_queued_chains(tmp_path):
    config = RuntimeConfig(n_nodes=2, chain=TINY, task_slots=2)
    service = ChainService(config, tmp_path / "svc", max_concurrent=1)
    service.start()
    running = service.submit(chain=TINY)
    queued = service.submit(chain=TINY)
    queued2 = service.submit(chain=TINY)
    service.wait(running.id, timeout=60)
    # shut down while the backlog is still queued: queued chains fail
    # loudly instead of hanging their waiters
    threading.Thread(target=service.shutdown, daemon=True).start()
    for job in (queued, queued2):
        job.done.wait(30.0)
    assert {queued.state, queued2.state} <= {DONE, "failed"}
