"""Tests for the multi-process execution runtime (`repro.runtime`).

The fast tests here cover storage primitives, the registry's damage
semantics, and two end-to-end smokes on real worker processes (one clean
run, one real-SIGKILL recovery).  The ``slow`` marker guards the full
differential kill/recovery matrix and the wall-clock comparison — CI runs
them in the dedicated ``runtime-smoke`` job (``-m "slow or not slow"``).

Every end-to-end assertion is a byte-for-byte checksum comparison against
the in-process :class:`repro.localexec.LocalCluster` reference: the UDFs
are deterministic and order-independent, so any recovery mistake — a lost
record, a duplicated key, a stale Fig. 5 map output — changes the final
checksum.
"""

import functools
import os
import time

import pytest

from repro.faults import FaultModel
from repro.localexec import LocalCluster, LocalJobConfig
from repro.obs import RecordingTracer
from repro.runtime.coordinator import Coordinator, RuntimeConfig
from repro.runtime.storage import (
    ClusterRegistry,
    MapEntry,
    NodeStore,
    PieceEntry,
    chain_checksum,
    decode_records,
    encode_records,
)
from repro.localexec.records import generate_records

CHAIN = LocalJobConfig(n_jobs=3, n_partitions=4, records_per_node=48,
                       records_per_block=16, split_ratio=2, seed=0)


@functools.lru_cache(maxsize=None)
def reference_checksum(chain: LocalJobConfig, n_nodes: int = 4) -> str:
    """Failure-free in-process result — the ground truth all process runs
    (with or without kills) must reproduce byte-for-byte."""
    cluster = LocalCluster(n_nodes, chain)
    for job in range(1, chain.n_jobs + 1):
        cluster.run_job(job)
    return chain_checksum(cluster.final_output())


class KillAt:
    """Hook: real SIGKILLs when a coordinator event fires."""

    def __init__(self, event: str, job: int, victims: list[int]):
        self.event = event
        self.job = job
        self.victims = list(victims)
        self.coord = None

    def __call__(self, event, **info):
        if event == self.event and info.get("job") == self.job:
            while self.victims:
                self.coord.kill_node(self.victims.pop(0))


class KillPlan:
    """Hook: one SIGKILL per (event, job, victim) trigger — kills spaced
    across different jobs, which KillAt's single trigger cannot express."""

    def __init__(self, *triggers: tuple[str, int, int]):
        self.triggers = list(triggers)
        self.coord = None

    @property
    def victims(self):
        return sorted(v for _, _, v in self.triggers)

    def __call__(self, event, **info):
        for trigger in list(self.triggers):
            ev, job, victim = trigger
            if event == ev and info.get("job") == job:
                self.triggers.remove(trigger)
                self.coord.kill_node(victim)


def run_process_chain(tmp_path, chain=CHAIN, n_nodes=4, hooks=None,
                      tracer=None, **kwargs):
    config_kwargs = {k: kwargs.pop(k) for k in
                     ("strategy", "heartbeat_interval", "heartbeat_expiry",
                      "fig5_guard", "hybrid_interval", "hybrid_replication",
                      "hybrid_reclaim", "task_slots", "fetch_parallelism",
                      "fetch_timeout", "server_split_filter",
                      "persistent_connections", "io_timeout",
                      "startup_timeout", "speculation",
                      "speculation_slowdown", "speculation_min_age",
                      "pre_replicate", "suspect_window", "suspect_ratio",
                      "suspect_min_commits", "memory_budget",
                      "shared_memory")
                     if k in kwargs}
    config = RuntimeConfig(n_nodes=n_nodes, chain=chain, **config_kwargs)
    with Coordinator(config, tmp_path / "cluster", tracer=tracer,
                     hooks=hooks, **kwargs) as coord:
        if hooks is not None and hasattr(hooks, "coord"):
            hooks.coord = coord
        return coord.run_chain()


def spans(tracer, cat=None, prefix=""):
    return [e for e in tracer.events
            if e["ph"] == "X" and (cat is None or e.get("cat") == cat)
            and e["name"].startswith(prefix)]


def instants(tracer, name):
    return [e for e in tracer.events
            if e["ph"] == "i" and e["name"] == name]


def on_disk_orphans(coord, jobs):
    """Files of ``jobs`` on *surviving* nodes' disks that the registry
    does not account for (every committed file must be some entry's
    primary copy or a registered replica)."""
    orphans = []
    reg = coord.registry
    for node in sorted(coord.alive):
        store = NodeStore(coord.workdir, node)
        for task_dir in sorted(store.dir.glob("map/job*/task*")):
            job = int(task_dir.parent.name[3:])
            task = int(task_dir.name[4:])
            entry = reg.map_outputs.get((job, task))
            if job in jobs and (entry is None or entry.node != node):
                orphans.append(str(task_dir.relative_to(coord.workdir)))
        for path in sorted(store.dir.glob("reduce/job*/part*/*.bin")):
            job = int(path.parent.parent.name[3:])
            partition = int(path.parent.name[4:])
            split, n_splits = map(int, path.stem[1:].split("of"))
            if job in jobs and node not in reg.holders(job, partition,
                                                       split, n_splits):
                orphans.append(str(path.relative_to(coord.workdir)))
    return orphans


# ----------------------------------------------------------------- storage
def test_record_codec_roundtrip():
    records = generate_records(32, seed=5, value_size=24)
    assert decode_records(encode_records(records)) == records
    assert decode_records(b"") == []
    with pytest.raises(ValueError):
        decode_records(encode_records(records) + b"\x00")


def test_chain_checksum_ignores_piece_boundaries_and_order():
    records = generate_records(20, seed=1)
    whole = {0: sorted(records)}
    shuffled = {0: list(reversed(records))}
    assert chain_checksum(whole) == chain_checksum(shuffled)
    # a single dropped record must change the checksum
    assert chain_checksum({0: records[:-1]}) != chain_checksum(whole)


def test_node_store_atomic_write_and_drop(tmp_path):
    store = NodeStore(tmp_path, 3)
    records = generate_records(8, seed=2)
    counts = store.write_map_output(2, 7, (1, 0), {0: records, 1: []})
    assert counts == {0: 8, 1: 0}
    assert decode_records(store.read_map_slice(2, 7, 0)) == records
    assert store.read_map_slice(2, 7, 5) == b""  # absent slice = empty
    store.drop_map_output(2, 7)
    assert store.read_map_slice(2, 7, 0) == b""
    store.drop_map_output(2, 99)  # idempotent on a never-written task

    store.write_piece(1, 0, 1, 2, records)
    assert decode_records(store.read_piece(1, 0, 1, 2)) == records
    assert not list(store.dir.rglob("*.tmp"))


def test_registry_files_damage_for_committed_jobs_only():
    reg = ClusterRegistry()
    reg.add_map(MapEntry(1, 0, node=2, origin=None, counts={0: 4}))
    reg.add_piece(PieceEntry(1, 0, 0, 1, node=2, n_records=4))
    reg.add_piece(PieceEntry(2, 1, 0, 1, node=2, n_records=4))
    reg.add_piece(PieceEntry(2, 2, 0, 1, node=0, n_records=4))
    reg.record_death(2, completed_jobs=1)
    # the dead node's outputs are gone either way...
    assert reg.map_outputs == {}
    assert reg.pieces[1][0] == [] and reg.pieces[2][1] == []
    # ...but only the committed job's losses count as damage
    assert reg.damaged_jobs() == [1]
    assert reg.damage[1][0] == [(0, 1)]


def test_config_rejects_expiry_crowding_io_timeout():
    """A heartbeat_expiry at or above io_timeout would turn every
    mid-shuffle death into a 'dispatch stalled' error instead of a
    recovery; the config must refuse the combination up front."""
    RuntimeConfig(heartbeat_expiry=0.4, io_timeout=30.0)  # fine
    with pytest.raises(ValueError, match="heartbeat_expiry"):
        RuntimeConfig(heartbeat_expiry=35.0, io_timeout=30.0)
    with pytest.raises(ValueError, match="heartbeat_expiry"):
        RuntimeConfig(heartbeat_expiry=20.0, io_timeout=30.0)


def test_cascade_jobs_skips_stale_upstream_damage(tmp_path):
    """Damage filed for a job upstream of an intact one is outside the
    cascade: it must not drive the run loop (regression — run_chain spun
    forever recovering nothing when damaged_jobs() held only such jobs)."""
    coord = Coordinator(RuntimeConfig(n_nodes=4, chain=CHAIN),
                        tmp_path / "cluster")
    coord.completed_jobs = 3
    coord.registry.damage = {1: {0: [(0, 1)]}, 2: {1: [(0, 2)]}}
    assert coord.registry.damaged_jobs() == [1, 2]
    assert coord._cascade_jobs() == []  # job 3 intact: nothing to do
    # a later death damaging the sink makes them cascade-relevant again
    coord.registry.damage[3] = {0: [(0, 1)]}
    assert coord._cascade_jobs() == [1, 2, 3]


def test_registry_promotes_replica_instead_of_filing_damage():
    reg = ClusterRegistry()
    reg.add_piece(PieceEntry(1, 0, 0, 1, node=1, n_records=4))
    reg.add_replica(1, 0, 0, 1, node=3)
    reg.mark_replicated(1, 2)
    reg.record_death(1, completed_jobs=1)
    # the surviving copy takes over as primary; no damage is filed
    assert reg.damaged_jobs() == []
    [entry] = reg.pieces[1][0]
    assert entry.node == 3 and reg.holders(1, 0, 0, 1) == {3}
    # ...but the piece is now below its replication target
    assert reg.under_replicated(n_alive=3) == [entry]
    reg.add_replica(1, 0, 0, 1, node=0)
    assert reg.under_replicated(n_alive=3) == []
    with pytest.raises(KeyError):
        reg.add_replica(9, 0, 0, 1, node=2)  # replica without a primary


def test_registry_last_copy_loss_is_damage_even_with_replication():
    reg = ClusterRegistry()
    reg.add_piece(PieceEntry(1, 0, 0, 1, node=1, n_records=4))
    reg.add_replica(1, 0, 0, 1, node=2)
    reg.record_death(1, completed_jobs=1)
    reg.record_death(2, completed_jobs=1)
    assert reg.damaged_jobs() == [1]
    assert reg.damage[1][0] == [(0, 1)]


def test_registry_recompute_resets_stale_holder_sets():
    """A recomputed piece replaces the same-signature entry; the old
    entry's holder set must go with it or re-replication would count
    copies of bytes that no longer exist."""
    reg = ClusterRegistry()
    reg.add_piece(PieceEntry(1, 0, 0, 1, node=0, n_records=4))
    reg.add_replica(1, 0, 0, 1, node=2)
    reg.add_piece(PieceEntry(1, 0, 0, 1, node=3, n_records=4))
    assert reg.holders(1, 0, 0, 1) == {3}


def test_registry_reclaim_through_forgets_metadata():
    reg = ClusterRegistry()
    reg.add_map(MapEntry(1, 0, node=0, origin=None, counts={0: 4}))
    reg.add_map(MapEntry(2, 0, node=0, origin=None, counts={0: 4}))
    reg.add_piece(PieceEntry(1, 0, 0, 1, node=0, n_records=4))
    reg.add_piece(PieceEntry(2, 0, 0, 1, node=1, n_records=4))
    reg.mark_replicated(1, 2)
    reg.reclaim_through(map_upto=1, piece_upto=1)
    assert reg.map_tasks_of(1) == [] and reg.map_tasks_of(2) == [0]
    assert 1 not in reg.pieces and 1 not in reg.replicated_jobs
    # a death after reclamation must not file damage for unlinked files
    reg.record_death(0, completed_jobs=2)
    assert reg.damaged_jobs() == []


def test_node_store_drop_job_and_reclaim(tmp_path):
    store = NodeStore(tmp_path, 0)
    records = generate_records(8, seed=3)
    for job in (1, 2, 3):
        store.write_map_output(job, 0, None, {0: records})
        store.write_piece(job, 0, 0, 1, records)
    freed = store.reclaim_jobs(map_upto=2, piece_upto=1)
    assert freed > 0
    # behind the bounds: gone; at/after them: untouched
    assert not (store.dir / "map" / "job1").exists()
    assert not (store.dir / "map" / "job2").exists()
    assert (store.dir / "map" / "job3").is_dir()
    assert not (store.dir / "reduce" / "job1").exists()
    assert store.read_piece(2, 0, 0, 1) == encode_records(records)
    assert store.drop_job(2) > 0
    assert not (store.dir / "reduce" / "job2").exists()
    assert store.drop_job(2) == 0  # idempotent on swept jobs


def test_config_strategy_validation():
    RuntimeConfig(strategy="repl2", n_nodes=2)
    with pytest.raises(ValueError, match="replicas"):
        RuntimeConfig(strategy="repl3", n_nodes=2)
    with pytest.raises(ValueError, match="hybrid"):
        RuntimeConfig(strategy="rcmp", hybrid_reclaim=True)
    with pytest.raises(ValueError, match="hybrid_interval"):
        RuntimeConfig(strategy="hybrid", hybrid_interval=0)
    # anchors fall on interval multiples, never on the final job
    config = RuntimeConfig(strategy="hybrid", hybrid_interval=2,
                           chain=LocalJobConfig(n_jobs=5))
    assert [j for j in range(1, 6) if config.is_anchor(j)] == [2, 4]
    assert config.replication_for(2) == 2 and config.replication_for(3) == 1


def test_registry_coverage_tracks_split_pieces():
    reg = ClusterRegistry()
    reg.add_piece(PieceEntry(1, 0, 0, 2, node=0, n_records=3))
    assert not reg.covered(1, 0)
    reg.add_piece(PieceEntry(1, 0, 1, 2, node=1, n_records=5))
    assert reg.covered(1, 0)
    assert not reg.coverage_complete(1, n_partitions=2)


# ------------------------------------------------------- end-to-end smokes
def test_no_failure_run_matches_localexec(tmp_path):
    tracer = RecordingTracer()
    report = run_process_chain(tmp_path, tracer=tracer)
    assert report.checksum == reference_checksum(CHAIN)
    assert report.deaths == []
    assert [(j, k) for j, k, _ in report.job_times] == \
        [(1, "run"), (2, "run"), (3, "run")]
    # the coordinator traces chain/job/task spans for `repro analyze`
    assert spans(tracer, "chain") and len(spans(tracer, "job")) == 3
    task_spans = spans(tracer, "task")
    assert task_spans
    assert {e["args"]["pid"] for e in task_spans
            if "pid" in e.get("args", {})}  # real worker pids recorded


def test_kill_between_commit_and_next_job_recovers(tmp_path):
    """A worker SIGKILLed right at a job commit: the next job starts, the
    death is declared mid-dispatch, and the cascade recomputes the lost
    outputs with k-way splitting."""
    tracer = RecordingTracer()
    hooks = KillAt("job-commit", job=2, victims=[1])
    report = run_process_chain(tmp_path, hooks=hooks, tracer=tracer)
    assert report.checksum == reference_checksum(CHAIN)
    assert [n for _, n in report.deaths] == [1]
    # jobs 1+2 ran, were damaged, and were minimally recomputed
    kinds = [(j, k) for j, k, _ in report.job_times]
    assert kinds == [(1, "run"), (2, "run"), (1, "recompute"),
                     (2, "recompute"), (3, "run")]
    # split reducer work really ran on >= 2 distinct worker processes
    split_spans = [e for e in spans(tracer, "task")
                   if e.get("args", {}).get("n_splits", 1) > 1]
    assert split_spans, "split_ratio=2 must split a whole-partition loss"
    assert len({e["args"]["pid"] for e in split_spans}) >= 2
    assert instants(tracer, "node-death")


def test_stale_upstream_damage_does_not_hang(tmp_path):
    """End-to-end regression for the recover-nothing spin: leftovers of
    an earlier death (a lost job-1 piece whose consumer job is intact)
    must not wedge run_chain once the cascade no longer needs them."""
    class FileStaleDamage:
        coord = None

        def __call__(self, event, **info):
            if event == "job-commit" and info.get("job") == 2:
                reg = self.coord.registry
                lost = reg.pieces[1][0].pop(0)
                reg.damage.setdefault(1, {}).setdefault(0, []).append(
                    lost.signature)

    hooks = FileStaleDamage()
    report = run_process_chain(tmp_path, hooks=hooks)
    assert report.checksum == reference_checksum(CHAIN)
    assert [(j, k) for j, k, _ in report.job_times] == \
        [(1, "run"), (2, "run"), (3, "run")]


def test_worker_software_error_surfaces_with_traceback(tmp_path,
                                                       monkeypatch):
    """A deterministic bug inside a task must surface as a coordinator
    error carrying the worker's traceback — not masquerade as a node
    death and cascade through recovery killing node after node."""
    def buggy_udf(record, job):
        raise ValueError("deterministic UDF bug")

    # fork start method: the patched module state is inherited by workers
    monkeypatch.setattr("repro.runtime.worker.map_udf", buggy_udf)
    with pytest.raises(RuntimeError,
                       match="deterministic UDF bug") as excinfo:
        run_process_chain(tmp_path)
    assert "software error" in str(excinfo.value)


def test_startup_death_cleans_up_workers(tmp_path, monkeypatch):
    """A worker dying before readiness fails start() — which must reap
    the surviving workers rather than leak them until interpreter exit."""
    import multiprocessing

    import repro.runtime.coordinator as coord_mod

    real_main = coord_mod.worker_main

    def flaky_main(node, *args, **kwargs):
        if node == 2:
            os._exit(1)
        real_main(node, *args, **kwargs)

    monkeypatch.setattr(coord_mod, "worker_main", flaky_main)
    before = len(multiprocessing.active_children())
    coord = Coordinator(RuntimeConfig(n_nodes=4, chain=CHAIN),
                        tmp_path / "cluster")
    with pytest.raises(RuntimeError, match="died during startup"):
        coord.start()
    assert len(multiprocessing.active_children()) == before


# --------------------------------------------------- crash-timing matrix
@pytest.mark.slow
def test_kill_mid_shuffle_recovers(tmp_path):
    """SIGKILL lands after reduce dispatch, while reducers are fetching
    the dead node's map outputs over TCP."""
    hooks = KillAt("reduce-dispatch", job=2, victims=[0])
    report = run_process_chain(tmp_path, hooks=hooks)
    assert report.checksum == reference_checksum(CHAIN)
    assert [n for _, n in report.deaths] == [0]


@pytest.mark.slow
def test_double_kill_same_job_caps_split(tmp_path):
    """Two workers die in one job: the k-way split is capped at the
    surviving-node count (4 requested, 2 survivors -> 2-way)."""
    chain = LocalJobConfig(n_jobs=3, n_partitions=4, records_per_node=48,
                           records_per_block=16, split_ratio=4, seed=0)
    tracer = RecordingTracer()
    hooks = KillAt("job-commit", job=2, victims=[1, 3])
    report = run_process_chain(tmp_path, chain=chain, hooks=hooks,
                               tracer=tracer)
    assert report.checksum == reference_checksum(chain)
    assert sorted(n for _, n in report.deaths) == [1, 3]
    n_splits = {e["args"]["n_splits"] for e in spans(tracer, "task")
                if "n_splits" in e.get("args", {})}
    assert 2 in n_splits and not any(k > 2 for k in n_splits)


@pytest.mark.slow
def test_fig5_guard_on_real_processes(tmp_path):
    """The Fig. 5 hazard constructed on real storage: a consumer map
    output that survives the death but was derived from a partition
    regenerated by splitting must be invalidated and re-executed."""
    tracer = RecordingTracer()
    hooks = KillAt("job-commit", job=2, victims=[0])
    config = RuntimeConfig(n_nodes=4, chain=CHAIN)
    # move one job-2 consumer of node-0's partition onto node 3, so its
    # output survives node 0's death (same setup as test_localexec)
    def assign(job, task, node):
        return 3 if (job, task) == (2, 0) else node

    with Coordinator(config, tmp_path / "cluster", tracer=tracer,
                     hooks=hooks, map_assignment=assign) as coord:
        hooks.coord = coord
        report = coord.run_chain()
    assert report.checksum == reference_checksum(CHAIN)
    dropped = instants(tracer, "invalidate-map")
    assert any(e["args"]["job"] == 2 and e["args"]["task"] == 0
               for e in dropped)
    # the invalidated mapper really re-executed on a worker process
    rerun = [e for e in spans(tracer, "task")
             if e["name"].endswith(":map:2:0")]
    assert len(rerun) >= 2  # original run + post-invalidation re-run


@pytest.mark.slow
def test_live_fault_plan_delivers_sigkill(tmp_path):
    """A `FaultModel` plan drives a real wall-clock SIGKILL."""
    report = run_process_chain(
        tmp_path, fault_model=FaultModel.parse("kill@job1+0:node=2"))
    assert report.checksum == reference_checksum(CHAIN)
    assert [n for _, n in report.deaths] == [2]


@pytest.mark.slow
def test_heartbeat_expiry_mode_declares_death(tmp_path):
    """With a non-zero expiry the death is declared only after heartbeat
    silence, not via the omniscient process-exit check."""
    hooks = KillAt("job-commit", job=1, victims=[3])
    report = run_process_chain(tmp_path, hooks=hooks,
                               heartbeat_interval=0.05,
                               heartbeat_expiry=0.4)
    assert report.checksum == reference_checksum(CHAIN)
    assert [n for _, n in report.deaths] == [3]
    # the declaration waited out the silence window after the job-1 kill
    death_time = report.deaths[0][0]
    job1_wall = report.job_times[0][2]
    assert death_time >= job1_wall + 0.35


@pytest.mark.slow
@pytest.mark.parametrize("strategy", ["rcmp", "optimistic"])
@pytest.mark.parametrize("scenario", ["none", "single", "double"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_differential_matrix(tmp_path, seed, scenario, strategy):
    """The acceptance matrix: every (seed, failure scenario, strategy)
    must reproduce the failure-free in-process checksum byte-for-byte."""
    chain = LocalJobConfig(n_jobs=3, n_partitions=4, records_per_node=48,
                           records_per_block=16, split_ratio=2, seed=seed)
    victims = {"none": [], "single": [1], "double": [1, 2]}[scenario]
    hooks = KillAt("job-commit", job=2, victims=victims) if victims \
        else None
    report = run_process_chain(tmp_path, chain=chain, hooks=hooks,
                               strategy=strategy)
    assert report.checksum == reference_checksum(chain)
    assert sorted(n for _, n in report.deaths) == victims
    assert report.strategy == strategy


@pytest.mark.slow
@pytest.mark.parametrize("strategy", ["repl2", "hybrid"])
@pytest.mark.parametrize("scenario", ["none", "single", "double"])
@pytest.mark.parametrize("seed", [0, 1])
def test_differential_matrix_replicated_strategies(tmp_path, seed,
                                                   scenario, strategy):
    """The replication side of the acceptance matrix.  Double kills are
    spaced across job commits: re-replication restores the REPL-2 holder
    count between them (losing both copies of a piece at once is
    genuinely unrecoverable without recomputation)."""
    chain = LocalJobConfig(n_jobs=3, n_partitions=4, records_per_node=48,
                           records_per_block=16, split_ratio=2, seed=seed)
    triggers = {"none": [],
                "single": [("job-commit", 2, 1)],
                "double": [("job-commit", 1, 1),
                           ("job-commit", 2, 2)]}[scenario]
    hooks = KillPlan(*triggers) if triggers else None
    report = run_process_chain(tmp_path, chain=chain, hooks=hooks,
                               strategy=strategy)
    assert report.checksum == reference_checksum(chain)
    assert sorted(n for _, n in report.deaths) == \
        sorted(v for _, _, v in triggers)
    assert report.strategy == strategy
    if strategy == "repl2":  # the Hadoop baseline never recomputes
        assert not any(k == "recompute" for _, k, _ in report.job_times)


@pytest.mark.slow
@pytest.mark.parametrize("strategy", ["rcmp", "optimistic", "repl2",
                                      "hybrid"])
def test_differential_matrix_straggler(tmp_path, strategy):
    """The straggler column of the acceptance matrix: one 10x-throttled
    node with speculation and pre-replication on must still reproduce
    the failure-free in-process checksum byte-for-byte under every
    strategy — and, being slow rather than dead, must never be declared
    lost or cascade-recovered."""
    chain = LocalJobConfig(n_jobs=3, n_partitions=4, records_per_node=48,
                           records_per_block=16, split_ratio=2, seed=0)
    report = run_process_chain(
        tmp_path, chain=chain, strategy=strategy,
        task_slots=2, speculation=True, pre_replicate=True,
        speculation_min_age=0.02,
        fault_model=FaultModel.parse("slow@1:10"))
    assert report.checksum == reference_checksum(chain)
    assert report.deaths == []  # slow is never dead
    # no recovery machinery ran: every job committed as a plain run
    assert all(k in ("run", "re-replicate") for _, k, _ in
               report.job_times)
    assert report.speculation["throttled"] == {1: 10.0}


@pytest.mark.slow
def test_hybrid_anchor_bounds_the_cascade(tmp_path):
    """A death after an anchor recomputes only the jobs behind it: the
    anchor's replicated output survives as the recovery floor, even
    though a pre-anchor job is also damaged (§IV-C)."""
    chain = LocalJobConfig(n_jobs=4, n_partitions=4, records_per_node=48,
                           records_per_block=16, split_ratio=2, seed=0)
    tracer = RecordingTracer()
    hooks = KillAt("job-commit", job=3, victims=[1])
    report = run_process_chain(tmp_path, chain=chain, hooks=hooks,
                               tracer=tracer, strategy="hybrid",
                               hybrid_interval=2)
    assert report.checksum == reference_checksum(chain)
    # only job 3 recomputed: job 1's damage sits behind the job-2 anchor
    assert [(j, k) for j, k, _ in report.job_times
            if k == "recompute"] == [(3, "recompute")]
    [recovery] = [e for e in spans(tracer, "cascade")
                  if e["name"] == "recovery"]
    assert recovery["args"]["jobs"] == [3]
    assert instants(tracer, "replicated")


@pytest.mark.slow
def test_hybrid_death_at_anchor_commit_recovers(tmp_path):
    """SIGKILL lands while the anchor's replicas are being written: the
    job is not yet committed, so the coordinator re-enters it, restores
    the missing pieces and copies, and the anchor ends fully
    replicated."""
    chain = LocalJobConfig(n_jobs=3, n_partitions=4, records_per_node=48,
                           records_per_block=16, split_ratio=2, seed=0)
    hooks = KillAt("replicate-dispatch", job=2, victims=[1])
    config = RuntimeConfig(n_nodes=4, chain=chain, strategy="hybrid",
                           hybrid_interval=2)
    with Coordinator(config, tmp_path / "cluster", hooks=hooks) as coord:
        hooks.coord = coord
        report = coord.run_chain()
        assert report.checksum == reference_checksum(chain)
        assert [n for _, n in report.deaths] == [1]
        assert coord.registry.replicated_jobs == {2: 2}
        for plist in coord.registry.pieces[2].values():
            for entry in plist:
                assert len(coord.registry.holders(*entry.key)) >= 2


@pytest.mark.slow
def test_kill_mid_replica_write_leaves_no_torn_replica(tmp_path):
    """SIGKILL during the replication phase: whatever the victim was
    writing dies with it; every *committed* replica on a surviving node
    is byte-identical to its primary and no temp file leaks."""
    chain = LocalJobConfig(n_jobs=3, n_partitions=4, records_per_node=48,
                           records_per_block=16, split_ratio=2, seed=0)
    hooks = KillAt("replicate-dispatch", job=1, victims=[2])
    config = RuntimeConfig(n_nodes=4, chain=chain, strategy="repl2")
    with Coordinator(config, tmp_path / "cluster", hooks=hooks) as coord:
        hooks.coord = coord
        report = coord.run_chain()
        assert report.checksum == reference_checksum(chain)
        for node in coord.alive:
            assert not list(NodeStore(coord.workdir, node)
                            .dir.rglob("*.tmp"))
        for key, holders in coord.registry.replicas.items():
            datas = {NodeStore(coord.workdir, n).read_piece(*key)
                     for n in holders}
            assert len(holders) >= 2 and len(datas) == 1


@pytest.mark.slow
def test_hybrid_reclaim_frees_files_behind_the_anchor(tmp_path):
    """Reclamation really unlinks: map outputs and pieces behind each
    committed anchor disappear from every node's disk, files at/after
    the last anchor stay, and a post-reclaim death still recovers (the
    cascade never needs the reclaimed files)."""
    chain = LocalJobConfig(n_jobs=5, n_partitions=4, records_per_node=48,
                           records_per_block=16, split_ratio=2, seed=0)
    hooks = KillAt("job-commit", job=4, victims=[1])
    config = RuntimeConfig(n_nodes=4, chain=chain, strategy="hybrid",
                           hybrid_interval=2, hybrid_reclaim=True)
    with Coordinator(config, tmp_path / "cluster", hooks=hooks) as coord:
        hooks.coord = coord
        report = coord.run_chain()
        assert report.checksum == reference_checksum(chain)
        # anchors at jobs 2 and 4 each ran a reclamation pass
        assert [a for a, _ in report.reclaims] == [2, 4]
        assert report.reclaimed_bytes > 0
        assert "B freed behind anchor" in report.render()
        # post-anchor death never recomputed anything behind the anchor
        assert not any(j < 4 for j, k, _ in report.job_times
                       if k == "recompute")
        stores = [NodeStore(coord.workdir, n) for n in sorted(coord.alive)]
        # behind the last anchor: gone from every surviving disk
        for store in stores:
            for job in (1, 2, 3):
                assert not (store.dir / "map" / f"job{job}").exists()
            for job in (1, 2):
                assert not (store.dir / "reduce" / f"job{job}").exists()
        # at/after the last intact anchor: never touched
        assert any((s.dir / "map" / "job4").is_dir() for s in stores)
        assert any((s.dir / "reduce" / "job4").is_dir() for s in stores)
        assert any((s.dir / "reduce" / "job5").is_dir() for s in stores)


@pytest.mark.slow
def test_optimistic_rerun_leaves_no_orphan_files(tmp_path):
    """The rerun sweep: re-executed jobs place their reducers over the
    *surviving* nodes, so without the on-disk sweep the old placement's
    files linger as orphans on nodes the rerun no longer uses."""
    hooks = KillAt("job-commit", job=2, victims=[1])
    config = RuntimeConfig(n_nodes=4, chain=CHAIN, strategy="optimistic")
    with Coordinator(config, tmp_path / "cluster", hooks=hooks) as coord:
        hooks.coord = coord
        report = coord.run_chain()
        assert report.checksum == reference_checksum(CHAIN)
        assert [(j, k) for j, k, _ in report.job_times] == \
            [(1, "run"), (2, "run"), (1, "rerun"), (2, "rerun"), (3, "run")]
        assert on_disk_orphans(coord, jobs={1, 2}) == []


@pytest.mark.slow
def test_repl2_simultaneous_double_copy_loss_is_irrecoverable(tmp_path):
    """Losing both holders of a piece at once exceeds what REPL-2 can
    mask — the coordinator must fail loudly, not return wrong bytes.
    (Replica placement varies run to run, so the victims are the actual
    holder set of one committed piece, read at kill time.)"""
    class KillAllHolders:
        coord = None

        def __call__(self, event, **info):
            if event == "job-commit" and info.get("job") == 2:
                reg = self.coord.registry
                entry = reg.pieces[2][0][0]
                for node in sorted(reg.holders(*entry.key)):
                    self.coord.kill_node(node)

    with pytest.raises(RuntimeError, match="irrecoverable"):
        run_process_chain(tmp_path, hooks=KillAllHolders(),
                          strategy="repl2")


def _cross_worker_overlap(tasks):
    """Wall time during which task spans from >= 2 distinct workers were
    open simultaneously (an event sweep over the span intervals)."""
    events = []
    for e in tasks:
        events.append((e["ts"], 1, e["tid"]))
        events.append((e["ts"] + e["dur"], -1, e["tid"]))
    events.sort()
    open_by: dict = {}
    overlap, last = 0.0, None
    for t, delta, tid in events:
        if last is not None and \
                sum(1 for v in open_by.values() if v > 0) >= 2:
            overlap += t - last
        open_by[tid] = open_by.get(tid, 0) + delta
        last = t
    return overlap


@pytest.mark.slow
def test_four_nodes_beat_one_node_wall_clock(tmp_path):
    """Real processes overlap map/shuffle/reduce work across nodes.

    The deterministic assertion is trace-based: the 4-node run must
    actually *schedule* compute concurrently — all four workers execute
    tasks, and spans from distinct workers are open simultaneously for
    most of the chain — which no amount of host-scheduler noise can
    fake or hide.  The raw 4-vs-1 wall-clock race only measures real
    parallelism when the host has cores to spare, so it runs best-of-3
    behind an ``os.cpu_count()`` guard (flaky on 1-core hosts
    otherwise: the win there is I/O overlap only)."""
    total = 12_000
    chain4 = LocalJobConfig(n_jobs=3, n_partitions=8,
                            records_per_node=total // 4,
                            records_per_block=64, seed=0, value_size=64)
    chain1 = LocalJobConfig(n_jobs=3, n_partitions=8,
                            records_per_node=total,
                            records_per_block=64, seed=0, value_size=64)

    tracer = RecordingTracer()
    t0 = time.perf_counter()
    run_process_chain(tmp_path / "four", chain=chain4, n_nodes=4,
                      tracer=tracer)
    t4 = time.perf_counter() - t0
    tasks = spans(tracer, "task")
    assert {e["tid"] for e in tasks} == {0, 1, 2, 3}
    window = (max(e["ts"] + e["dur"] for e in tasks)
              - min(e["ts"] for e in tasks))
    overlap = _cross_worker_overlap(tasks)
    assert overlap > 0.5 * window, \
        f"workers overlapped {overlap:.3f}s of a {window:.3f}s window"

    if (os.cpu_count() or 1) < 2:
        return  # no parallel compute possible; the race means nothing

    def wall(n_nodes, chain, tag):
        best = float("inf")
        for attempt in range(3):
            t0 = time.perf_counter()
            run_process_chain(tmp_path / f"{tag}{attempt}", chain=chain,
                              n_nodes=n_nodes)
            best = min(best, time.perf_counter() - t0)
        return best

    t4 = min(t4, wall(4, chain4, "four"))
    t1 = wall(1, chain1, "one")
    assert t4 < t1, f"4-node {t4:.2f}s vs 1-node {t1:.2f}s"


@pytest.mark.slow
def test_workers_survive_many_sequential_chains(tmp_path):
    """Back-to-back chains in fresh coordinators do not leak processes."""
    import multiprocessing

    before = len(multiprocessing.active_children())
    for i in range(2):
        chain = LocalJobConfig(n_jobs=2, n_partitions=2,
                               records_per_node=16, records_per_block=8,
                               seed=i)
        report = run_process_chain(tmp_path / f"c{i}", chain=chain,
                                   n_nodes=2)
        assert report.checksum == reference_checksum(chain, 2)
    assert len(multiprocessing.active_children()) == before
