"""Seeded fault-model fuzzing: randomized fault configurations, fixed seeds.

Used by the CI smoke job.  Each iteration draws a random (but seeded, hence
reproducible) combination of cluster size, chain length, strategy, heartbeat
configuration and fault input — legacy ``FAIL`` plans, explicit event specs,
or stochastic MTBF arrivals — executes the chain **twice**, and asserts:

* no crash: the run returns a ``ChainResult`` (exceptions abort the fuzz);
* termination: the result is ``completed`` or carries a ``failure_reason``;
* determinism: both executions produce byte-identical summaries.

Usage::

    PYTHONPATH=src python tools/fault_fuzz.py [--runs N] [--seed S]

``FAULT_FUZZ_RUNS`` / ``FAULT_FUZZ_SEED`` env vars override the defaults.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import random
import sys

from repro.cluster import presets
from repro.cluster.spec import MB
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.faults import FaultModel
from repro.workloads.chain import build_chain

DEGRADE = dict(max_cascade_depth=6, max_restarts=4, restart_backoff=1.0)

STRATEGIES = {
    "rcmp": lambda: strategies.RCMP.with_degradation(**DEGRADE),
    "hybrid": lambda: strategies.HYBRID.with_degradation(**DEGRADE),
    "repl2": lambda: strategies.REPL2,
    "optimistic": lambda: strategies.OPTIMISTIC.with_degradation(
        max_restarts=4, restart_backoff=1.0),
}


def _draw_faults(rng: random.Random, n_jobs: int, n_nodes: int):
    """One of: legacy plan string, explicit event spec, straggler mix,
    MTBF model."""
    roll = rng.random()
    if roll < 0.2:  # legacy FAIL notation
        first = rng.randint(1, n_jobs)
        if rng.random() < 0.5:
            return str(first)
        return f"{first},{rng.randint(first, 2 * n_jobs)}"
    if roll < 0.35:  # straggler clauses, alone or interleaved with kills
        # pinned slow victims must be distinct: two slow clauses naming
        # one node with different factors are a (tested) parse error
        victims = rng.sample(range(n_nodes), 2)
        factor = rng.choice([2, 3, 5, 10])
        clauses = [f"slow@{victims[0]}:{factor}"
                   if rng.random() < 0.5 else
                   f"slow@job{rng.randint(1, n_jobs)}"
                   f"+{rng.randint(0, 20)}:"
                   f"node={victims[0]},factor={factor}"]
        if rng.random() < 0.4:  # second straggler, distinct node
            clauses.append(f"slow@{victims[1]}:{rng.choice([2, 4])}")
        if rng.random() < 0.6:  # slow + kill interleaving
            clauses.append(f"kill@job{rng.randint(1, n_jobs)}"
                           f"+{rng.randint(0, 30)}")
        return FaultModel.parse(";".join(clauses))
    if roll < 0.65:  # explicit event clauses
        clauses = []
        for _ in range(rng.randint(1, 2)):
            kind = rng.choice(["kill", "transient", "disk", "rack"])
            anchor = (f"job{rng.randint(1, n_jobs)}+{rng.randint(0, 30)}"
                      if rng.random() < 0.7 else f"t{rng.randint(10, 400)}")
            opts = []
            if kind in ("transient", "rack"):
                opts.append(f"down={rng.randint(10, 90)}")
                if kind == "transient" and rng.random() < 0.3:
                    opts.append("wipe")
            if kind == "rack":
                opts.append(f"rack={rng.randint(0, 1)}")
            clauses.append(f"{kind}@{anchor}" + (":" + ",".join(opts)
                                                 if opts else ""))
        return FaultModel.parse(";".join(clauses))
    # stochastic arrivals
    mtbf = rng.choice([60, 120, 300, 600])
    mix = rng.choice(["kill", "transient,down=40", "transient,kill,down=45"])
    return FaultModel.parse(f"mtbf={mtbf}:{mix},max=16")


def _summary(result) -> str:
    return repr((result.completed, result.failure_reason,
                 round(result.total_runtime, 9), result.jobs_started,
                 result.restarts, tuple(result.killed_nodes),
                 tuple(result.fault_log), result.metrics.summary()))


def fuzz_one(i: int, master_seed: int) -> None:
    rng = random.Random(master_seed * 100_000 + i)
    n_nodes = rng.randint(4, 6)
    cluster = presets.tiny(n_nodes)
    if rng.random() < 0.3:
        cluster = dataclasses.replace(cluster, n_racks=2)
    if rng.random() < 0.3:  # heartbeat detector instead of the paper's oracle
        cluster = dataclasses.replace(
            cluster, heartbeat_interval=float(rng.randint(1, 5)),
            heartbeat_expiry=float(rng.randint(6, 15)))
    n_jobs = rng.randint(2, 4)
    chain = build_chain(n_jobs=n_jobs, per_node_input=256 * MB,
                        block_size=64 * MB)
    name = rng.choice(sorted(STRATEGIES))
    strategy = STRATEGIES[name]()
    faults = _draw_faults(rng, n_jobs, n_nodes)
    seed = rng.randint(0, 2**31 - 1)

    summaries = []
    for _ in range(2):
        result = run_chain(cluster, strategy, chain=chain,
                           failures=faults, seed=seed)
        assert result.completed or result.failure_reason, (
            f"run {i}: neither completed nor failed cleanly "
            f"(strategy={name}, faults={faults!r}, seed={seed})")
        summaries.append(_summary(result))
    assert summaries[0] == summaries[1], (
        f"run {i}: non-deterministic summary (strategy={name}, "
        f"faults={faults!r}, seed={seed})\n"
        f"  first:  {summaries[0]}\n  second: {summaries[1]}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int,
                        default=int(os.environ.get("FAULT_FUZZ_RUNS", 300)))
    parser.add_argument("--seed", type=int,
                        default=int(os.environ.get("FAULT_FUZZ_SEED", 1)))
    args = parser.parse_args(argv)
    for i in range(args.runs):
        fuzz_one(i, args.seed)
        if (i + 1) % 50 == 0:
            print(f"fault-fuzz: {i + 1}/{args.runs} ok", flush=True)
    print(f"fault-fuzz: {args.runs} randomized runs, all terminated "
          f"deterministically (seed={args.seed})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
