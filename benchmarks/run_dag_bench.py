#!/usr/bin/env python
"""DAG benchmark: the differential checksum matrix on non-linear graphs.

The diamond (fork/join) and the 3-dimension data-cube lattice (8
cuboids, 4 sinks) run on the 4-node process backend across the four
execution strategies under three kill schedules — none, a single
SIGKILL at a mid-DAG job start, and two kills spaced across the run.
Every run is checksum-verified byte-for-byte against the failure-free
in-process reference of the same graph, so a recovery planner mistake
on any branch (a lost record, a stale Fig. 5 map output, a sibling
branch recomputed from damaged inputs) fails the run rather than
skewing a number.

The failure-free diamond run doubles as the wave-scheduling smoke: the
independent branch jobs must commit with one shared wave wall time.

Results land in ``benchmarks/BENCH_dag.json`` (committed — the perf
trajectory record).  ``--check`` re-runs at a reduced scale and fails
non-zero on any violated claim — the CI gate for DAG recovery.

Usage::

    PYTHONPATH=src python benchmarks/run_dag_bench.py
    PYTHONPATH=src python benchmarks/run_dag_bench.py --check
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

from common import (
    add_check_and_out,
    finish,
    reference_checksum,
    write_payload,
)

from repro.faults import FaultModel
from repro.localexec import LocalJobConfig
from repro.runtime import Coordinator, RuntimeConfig
from repro.workloads import cube_dependencies, shape_dependencies

STRATEGIES = ("rcmp", "optimistic", "repl2", "hybrid")

#: shape -> (dependencies, single-kill schedule, double-kill schedule)
SHAPES = {
    "diamond": (shape_dependencies("diamond"),
                "kill@job2+0:node=1",
                "kill@job2+0:node=1; kill@job4+0:node=2"),
    "cube3": (cube_dependencies(3),
              "kill@job5+0:node=1",
              "kill@job2+0:node=1; kill@job8+0:node=2"),
}


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=192,
                        help="chain input records per node")
    parser.add_argument("--partitions", type=int, default=4)
    add_check_and_out(parser, "BENCH_dag.json")
    return parser.parse_args()


def run_chain(chain: LocalJobConfig, expected: str, faults: str,
              **config_kwargs):
    config = RuntimeConfig(n_nodes=4, chain=chain, task_slots=2,
                           **config_kwargs)
    model = FaultModel.parse(faults) if faults else None
    with tempfile.TemporaryDirectory(prefix="rcmp-dag-") as workdir:
        with Coordinator(config, workdir, fault_model=model) as coord:
            report = coord.run_chain()
    if report.checksum != expected:
        raise SystemExit(f"checksum mismatch under {config_kwargs} "
                         f"faults={faults!r}: "
                         f"{report.checksum} != {expected}")
    return report


def summarize(report) -> dict:
    recovery = sum(w for _, kind, w in report.job_times if kind != "run")
    return {
        "wall_s": round(report.wall_time, 3),
        "recovery_s": round(recovery, 3),
        "deaths": len(report.deaths),
        "recovered_jobs": sorted({j for j, kind, _ in report.job_times
                                  if kind in ("recompute", "rerun")}),
    }


def main() -> int:
    args = parse_args()
    records = 48 if args.check else args.records
    failures: list[str] = []

    t0 = time.perf_counter()
    matrix: dict = {}
    for shape, (deps, single, double) in SHAPES.items():
        chain = LocalJobConfig(n_jobs=len(deps),
                               n_partitions=args.partitions,
                               records_per_node=records,
                               records_per_block=16, split_ratio=2,
                               seed=0, dependencies=deps)
        expected = reference_checksum(chain)
        schedules = {"none": "", "single": single, "double": double}
        matrix[shape] = {}
        for strategy in STRATEGIES:
            matrix[shape][strategy] = {}
            for label, faults in schedules.items():
                report = run_chain(chain, expected, faults,
                                   strategy=strategy)
                row = summarize(report)
                matrix[shape][strategy][label] = row
                kills = label != "none" and (2 if label == "double" else 1)
                if row["deaths"] != (kills or 0):
                    failures.append(
                        f"{shape}/{strategy}/{label}: expected "
                        f"{kills or 0} deaths, saw {row['deaths']}")
                print(f"{shape:>8s} {strategy:>10s} {label:>6s}: "
                      f"{row['wall_s']}s "
                      f"({row['recovery_s']}s recovering, "
                      f"{row['deaths']} deaths)")
                if label == "none" and strategy == "rcmp":
                    # wave-scheduling smoke: the graph's independent
                    # jobs commit with one shared wave wall time
                    walls = {j: w for j, _, w in report.job_times}
                    graph = chain.graph()
                    for level in graph.topo_levels(
                            range(1, chain.n_jobs + 1)):
                        if len({round(walls[j], 9)
                                for j in level}) != 1:
                            failures.append(
                                f"{shape}: level {level} did not run "
                                f"as one wave (walls "
                                f"{[walls[j] for j in level]})")

    # recovery must be non-vacuous: every kill schedule on the rcmp
    # strategy recomputed at least one job
    for shape in SHAPES:
        for label in ("single", "double"):
            if not matrix[shape]["rcmp"][label]["recovered_jobs"]:
                failures.append(f"{shape}/rcmp/{label}: kill recovered "
                                "no jobs — the matrix is vacuous")

    payload = {
        "chain": {"partitions": args.partitions,
                  "records_per_node": records, "nodes": 4,
                  "task_slots": 2},
        "shapes": {shape: {"jobs": len(deps), "single": single,
                           "double": double}
                   for shape, (deps, single, double) in SHAPES.items()},
        "check_mode": args.check,
        "cpu_count": os.cpu_count(),
        "matrix": matrix,
        "bench_wall_s": round(time.perf_counter() - t0, 1),
    }
    write_payload(payload, "BENCH_dag.json", args.out)
    return finish(failures)


if __name__ == "__main__":
    raise SystemExit(main())
