"""Shared plumbing for the ``run_*_bench.py`` scripts.

Each bench stays a standalone script (run as ``PYTHONPATH=src python
benchmarks/run_X.py``; ``sys.path[0]`` is this directory, so a plain
``import common`` works).  This module holds exactly the pieces every
bench had duplicated:

* the memoized failure-free in-process reference checksum every run is
  verified byte-for-byte against,
* the ``--check`` / ``--out`` argument pair (reduced-scale CI smoke
  mode, and where the committed ``BENCH_*.json`` payload lands),
* writing the payload, and
* the failure gate that turns a list of violated claims into the
  process exit code CI keys off.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Iterable, Optional

from repro.localexec import LocalCluster, LocalJobConfig
from repro.localexec.records import generate_records
from repro.runtime import chain_checksum
from repro.runtime.storage import _KEY, encode_records

_REFS: dict[tuple[LocalJobConfig, int], str] = {}


def reference_checksum(chain: LocalJobConfig, n_nodes: int = 4) -> str:
    """Checksum of the failure-free in-process run of ``chain`` —
    memoized, since the benches compare many runs against few shapes."""
    key = (chain, n_nodes)
    if key not in _REFS:
        cluster = LocalCluster(n_nodes, chain)
        cluster.run_chain()
        _REFS[key] = chain_checksum(cluster.final_output())
    return _REFS[key]


def add_check_and_out(parser: argparse.ArgumentParser,
                      default_name: str) -> None:
    """The two arguments every bench shares."""
    parser.add_argument("--check", action="store_true",
                        help="reduced scale + hard assertions (CI smoke)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: "
                             f"benchmarks/{default_name})")


def write_payload(payload: dict, default_name: str,
                  out: Optional[str] = None) -> Path:
    """Write the bench payload (committed perf-trajectory record)."""
    path = Path(out) if out else Path(__file__).parent / default_name
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"written to {path}")
    return path


def _encode_records_join(records) -> bytes:
    """The codec ``encode_records`` replaced: a per-record Python list
    of header/value fragments joined at the end — 2N list appends and a
    join-time gather for N records.  Kept here as the microbenchmark
    baseline (and as an independent second implementation the bench
    checks byte-equality against)."""
    parts = []
    for rec in records:
        parts.append(_KEY.pack(rec.key, len(rec.value)))
        parts.append(rec.value)
    return b"".join(parts)


def codec_bench(n_records: int = 20000, value_size: int = 64,
                repeat: int = 7) -> dict:
    """Time the preallocating ``encode_records`` against the join-based
    implementation it replaced, best-of-``repeat`` on one shared record
    batch.  Byte-equality of the two encodings is asserted — a codec
    that got faster by encoding differently would corrupt every stored
    piece."""
    records = generate_records(n_records, seed=0, value_size=value_size)
    encoded = encode_records(records)
    assert encoded == _encode_records_join(records), \
        "encode_records disagrees with the reference join encoding"

    def best_of(fn) -> float:
        walls = []
        for _ in range(repeat):
            t0 = time.perf_counter()
            fn(records)
            walls.append(time.perf_counter() - t0)
        return min(walls)

    join_s = best_of(_encode_records_join)
    packed_s = best_of(encode_records)
    return {
        "n_records": n_records,
        "value_size": value_size,
        "payload_bytes": len(encoded),
        "join_ms": round(join_s * 1e3, 4),
        "packed_ms": round(packed_s * 1e3, 4),
        "speedup": round(join_s / packed_s, 3),
    }


def finish(failures: Iterable[str]) -> int:
    """Print every violated claim and return the exit code."""
    failures = list(failures)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0
