"""Bench: regenerate Fig. 9 (double failures, RCMP vs REPL-3)."""


def test_fig9_double_failures(benchmark, scale, record_report):
    from repro.experiments import fig9

    report = benchmark.pedantic(lambda: fig9.run(scale), rounds=1,
                                iterations=1)
    record_report(report)
    rows = {c.label: c for c in report.rows}

    for case in fig9.CASES:
        s8 = rows[f"FAIL {case} RCMP S8"]
        repl3 = rows[f"FAIL {case} HADOOP REPL-3"]
        # everything completed (incl. the nested FAIL 4,7)
        assert "FAILED" not in s8.note
        assert "FAILED" not in repl3.note
        # RCMP with splitting beats or matches REPL-3 in every case
        assert s8.measured <= repl3.measured + 0.05, case

    # splitting benefits FAIL 7,14 the most (most recomputations)
    gap = {case: rows[f"FAIL {case} RCMP NO-SPLIT"].measured
           - rows[f"FAIL {case} RCMP S8"].measured
           for case in fig9.CASES}
    assert gap["7,14"] >= max(gap["2,2"], gap["2,4"]) - 0.05
