"""Bench: regenerate Fig. 14 (speed-up vs mapper waves)."""


def test_fig14_mapper_wave_speedup(benchmark, scale, record_report):
    from repro.experiments import fig14

    report = benchmark.pedantic(lambda: fig14.run(scale), rounds=1,
                                iterations=1)
    record_report(report)
    rows = {c.label: c.measured for c in report.rows}

    if scale == "ci":
        assert all(v > 0 for v in rows.values())
        return

    points = fig14.WAVE_POINTS
    fast = [rows[f"FAST SHUFFLE {w} mapper waves"] for w in points]
    slow = [rows[f"SLOW SHUFFLE {w} mapper waves"] for w in points]

    # FAST: fewer recomputed mapper waves -> near-linear speed-up growth
    assert fast[0] > fast[-1] * 1.4
    # SLOW: the bottlenecked shuffle hides the map phase, so the curve is
    # nearly flat in mapper waves
    assert slow[0] < slow[-1] * 1.25
    # and FAST's spread exceeds SLOW's
    assert (fast[0] - fast[-1]) > (slow[0] - slow[-1])
