"""Ablation benches for the design choices called out in DESIGN.md §5.

These do not correspond to a paper figure; they probe the knobs that drive
the reproduced shapes: the disk seek-penalty model (hot-spot magnitude),
splitting vs the §IV-B2 spread-output alternative, the hybrid replication
interval, and the failure-detection timeout.
"""

import dataclasses

import numpy as np

from repro.analysis.reporting import ExperimentReport
from repro.cluster import presets
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.workloads.chain import build_chain

MB = 1 << 20


def small_chain(n_jobs=4):
    return build_chain(n_jobs=n_jobs, per_node_input=512 * MB,
                       block_size=64 * MB)


def test_disk_penalty_sweep(benchmark, scale, record_report):
    """The seek penalty drives the hot-spot: with no penalty, NO-SPLIT's
    recomputation mappers are barely slower; with it, they balloon."""
    def run_sweep():
        report = ExperimentReport(
            "Ablation A", "disk concurrency penalty vs hot-spot magnitude")
        for alpha in (0.0, 0.25, 0.5, 1.0):
            node = dataclasses.replace(
                presets.tiny(8, (2, 2)).node, disk_concurrency_penalty=alpha)
            cluster = dataclasses.replace(presets.tiny(8, (2, 2)), node=node)
            result = run_chain(cluster, strategies.RCMP_NOSPLIT,
                               chain=small_chain(), failures="4")
            mappers = result.metrics.mapper_durations(("recompute", "rerun"))
            report.add(f"alpha={alpha}: median recomp mapper (s)",
                       float(np.median(mappers)))
        return report

    report = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record_report(report)
    values = [c.measured for c in report.rows]
    assert values[0] < values[-1]  # contention model is load-bearing
    assert all(a <= b + 1e-6 for a, b in zip(values, values[1:]))


def test_split_vs_spread(benchmark, scale, record_report):
    """§IV-B2: spreading reducer output mitigates the next job's hot-spot
    but, unlike splitting, does not parallelize the reducer itself."""
    def run_compare():
        report = ExperimentReport(
            "Ablation B", "reducer splitting vs spread-output alternative")
        chain = small_chain()
        for name, strategy in (("SPLIT", strategies.RCMP),
                               ("SPREAD", strategies.RCMP_SPREAD),
                               ("NEITHER", strategies.RCMP_NOSPLIT)):
            result = run_chain(presets.tiny(8, (2, 2)), strategy,
                               chain=chain, failures="4")
            report.add(f"{name}: total runtime (s)", result.total_runtime)
            reducers = result.metrics.reducer_durations(("recompute",))
            if reducers.size:
                report.add(f"{name}: mean recomp reducer (s)",
                           float(reducers.mean()))
        return report

    report = benchmark.pedantic(run_compare, rounds=1, iterations=1)
    record_report(report)
    rows = {c.label: c.measured for c in report.rows}
    # splitting divides the reducer work; spreading does not
    assert rows["SPLIT: mean recomp reducer (s)"] < \
        rows["SPREAD: mean recomp reducer (s)"]
    # both beat doing neither on total runtime
    assert rows["SPLIT: total runtime (s)"] <= \
        rows["NEITHER: total runtime (s)"] + 1.0


def test_hybrid_interval_sweep(benchmark, scale, record_report):
    """§IV-C: smaller replication intervals bound the cascade but tax the
    failure-free portion of the run."""
    def run_sweep():
        report = ExperimentReport(
            "Ablation C", "hybrid replication interval (failure at job 6)")
        chain = small_chain(n_jobs=6)
        for k in (0, 4, 2, 1):
            strategy = strategies.RCMP if k == 0 \
                else strategies.rcmp(hybrid_interval=k)
            result = run_chain(presets.tiny(6), strategy, chain=chain,
                               failures="6")
            recomputed = len(result.metrics.jobs_of_kind("recompute"))
            report.add(f"k={k or 'off'}: runtime (s)", result.total_runtime)
            report.add(f"k={k or 'off'}: jobs recomputed", float(recomputed))
        return report

    report = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record_report(report)
    rows = {c.label: c.measured for c in report.rows}
    # cascade depth shrinks monotonically with the interval
    assert rows["k=off: jobs recomputed"] >= rows["k=4: jobs recomputed"] \
        >= rows["k=2: jobs recomputed"] >= rows["k=1: jobs recomputed"]


def test_detection_timeout(benchmark, scale, record_report):
    """The ~45 s reaction overhead the paper calls 'pure overhead' scales
    directly with the detection timeout."""
    def run_sweep():
        report = ExperimentReport(
            "Ablation D", "failure-detection timeout vs recovery cost")
        chain = small_chain()
        for timeout in (5.0, 30.0, 90.0):
            spec = dataclasses.replace(presets.tiny(6),
                                       failure_detection_timeout=timeout)
            result = run_chain(spec, strategies.RCMP, chain=chain,
                               failures="4")
            report.add(f"timeout={timeout:.0f}s: runtime (s)",
                       result.total_runtime)
        return report

    report = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record_report(report)
    values = [c.measured for c in report.rows]
    assert values[0] < values[1] < values[2]


def test_persisted_storage_tradeoff(benchmark, scale, record_report):
    """§IV-A: RCMP trades storage for recomputation speed.  Quantify the
    persisted-output footprint against the recomputation benefit it buys
    (vs recomputing with map reuse disabled)."""
    def run_compare():
        report = ExperimentReport(
            "Ablation E", "persisted map outputs: storage vs speed-up")
        chain = small_chain(n_jobs=5)
        reuse = run_chain(presets.tiny(6), strategies.RCMP, chain=chain,
                          failures="5")
        no_reuse = dataclasses.replace(strategies.RCMP,
                                       reuse_map_outputs=False)
        cold = run_chain(presets.tiny(6), no_reuse, chain=chain,
                         failures="5")
        report.add("persisted bytes at end (GB)",
                   reuse.persisted_bytes / (1 << 30))
        report.add("recompute mean w/ reuse (s)",
                   float(reuse.metrics.job_durations("recompute").mean()))
        report.add("recompute mean w/o reuse (s)",
                   float(cold.metrics.job_durations("recompute").mean()))
        report.add("total runtime w/ reuse (s)", reuse.total_runtime)
        report.add("total runtime w/o reuse (s)", cold.total_runtime)
        return report

    report = benchmark.pedantic(run_compare, rounds=1, iterations=1)
    record_report(report)
    rows = {c.label: c.measured for c in report.rows}
    # the persisted data is what makes recomputation runs cheap
    assert rows["recompute mean w/ reuse (s)"] < \
        rows["recompute mean w/o reuse (s)"]
    assert rows["persisted bytes at end (GB)"] > 0
