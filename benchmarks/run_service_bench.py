#!/usr/bin/env python
"""Chain-service benchmark: multi-tenant throughput and kill isolation.

Two experiments on a resident :class:`ChainService` (one shared 4-node
pool of 2-slot workers), every chain checksum-verified against its
failure-free in-process reference:

* **isolation**: three chains multiplexed concurrently; node 3 is
  SIGKILLed once the wide chains have committed pieces onto it.  Chain
  ``b`` (2 partitions) never places pieces on node 3, so the kill must
  cascade only the wide chains — ``b``'s job timeline stays pure
  ``run`` entries — while every chain still produces byte-identical
  output.
* **throughput**: a seeded Poisson arrival stream of chains against the
  service under seeded MTBF kills (with dead-node replacement);
  reported as chains/sec plus p50/p99 submission-to-completion latency.

Results land in ``benchmarks/BENCH_service.json`` (committed — the perf
trajectory record).  ``--check`` runs a reduced-scale stream and fails
non-zero unless >= 3 chains ran concurrently on the shared pool, every
checksum matched, and the kill cascaded only the chains holding pieces
on the dead node — the CI smoke for the service's headline claims.

Usage::

    PYTHONPATH=src python benchmarks/run_service_bench.py
    PYTHONPATH=src python benchmarks/run_service_bench.py --check
"""

from __future__ import annotations

import argparse
import os
import random
import tempfile
import time

from common import (
    add_check_and_out,
    finish,
    reference_checksum,
    write_payload,
)

from repro.localexec import LocalJobConfig
from repro.runtime import ChainService, MTBFKills, RuntimeConfig

POOL_NODES = 4
TASK_SLOTS = 2


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chains", type=int, default=12,
                        help="chains in the Poisson arrival stream")
    parser.add_argument("--records", type=int, default=48,
                        help="chain input records per node")
    parser.add_argument("--mean-gap", type=float, default=0.3,
                        help="mean inter-arrival gap (seconds)")
    parser.add_argument("--mtbf", type=float, default=2.0,
                        help="mean time between injected kills (seconds)")
    parser.add_argument("--seed", type=int, default=1)
    add_check_and_out(parser, "BENCH_service.json")
    return parser.parse_args()


def pool_config() -> RuntimeConfig:
    return RuntimeConfig(n_nodes=POOL_NODES, chain=LocalJobConfig(),
                         task_slots=TASK_SLOTS)


def job_row(job, chain: LocalJobConfig) -> dict:
    return {
        "id": job.id,
        "state": job.state,
        "latency_s": round(job.finished - job.submitted, 3),
        "job_kinds": [k for _, k, _ in job.report.job_times]
        if job.report else None,
        "checksum_ok": bool(job.report and job.report.checksum
                            == reference_checksum(chain)),
        "error": job.error,
    }


def wait_until(predicate, deadline: float = 120.0) -> None:
    t_end = time.monotonic() + deadline
    while time.monotonic() < t_end:
        if predicate():
            return
        time.sleep(0.005)
    raise SystemExit("bench: kill window never opened")


def isolation_experiment(records: int) -> dict:
    """Three concurrent chains, one kill: only the chains with pieces on
    the dead node may cascade; every checksum must stay byte-exact."""
    chains = {
        "a": LocalJobConfig(n_jobs=4, n_partitions=4,
                            records_per_node=records,
                            records_per_block=16, seed=7),
        # 2 partitions -> pieces only ever on nodes 0-1: isolated
        "b": LocalJobConfig(n_jobs=4, n_partitions=2,
                            records_per_node=records,
                            records_per_block=16, seed=8),
        "c": LocalJobConfig(n_jobs=3, n_partitions=4,
                            records_per_node=records,
                            records_per_block=16, seed=9),
    }
    with tempfile.TemporaryDirectory(prefix="rcmp-svc-") as workdir:
        with ChainService(pool_config(), workdir,
                          max_concurrent=3) as service:
            jobs = {name: service.submit(chain=cfg)
                    for name, cfg in chains.items()}
            # kill node 3 once the wide chains have committed job 1 (its
            # pieces now sit on node 3) but are still mid-chain
            wait_until(lambda: all(
                jobs[n].run is not None
                and jobs[n].run.completed_jobs >= 1 for n in ("a", "b")))
            service.pool.kill_node(3)
            for job in jobs.values():
                service.wait(job.id, timeout=300)
            rows = {name: job_row(jobs[name], cfg)
                    for name, cfg in chains.items()}
            return {
                "chains": rows,
                "concurrent_peak": service.running_peak,
                "deaths": len(service.pool.deaths),
                "dead_node": 3,
            }


def throughput_experiment(n_chains: int, records: int, mean_gap: float,
                          mtbf: float, seed: int) -> dict:
    """Poisson arrivals under MTBF kills: chains/sec and latency tails."""
    shapes = [LocalJobConfig(n_jobs=2, n_partitions=4,
                             records_per_node=records,
                             records_per_block=16, seed=s)
              for s in range(n_chains)]
    rng = random.Random(seed)
    kills = MTBFKills(mtbf=mtbf, seed=seed, min_alive=2)
    with tempfile.TemporaryDirectory(prefix="rcmp-svc-") as workdir:
        with ChainService(pool_config(), workdir, max_concurrent=4,
                          faults=kills, replace_dead=True) as service:
            t0 = time.perf_counter()
            jobs = []
            for chain in shapes:
                jobs.append((service.submit(chain=chain), chain))
                time.sleep(rng.expovariate(1.0 / mean_gap))
            for job, _ in jobs:
                service.wait(job.id, timeout=600)
            wall = time.perf_counter() - t0
            latencies = sorted(job.finished - job.submitted
                               for job, _ in jobs)
            rows = [job_row(job, chain) for job, chain in jobs]
            return {
                "n_chains": n_chains,
                "wall_s": round(wall, 3),
                "chains_per_sec": round(n_chains / wall, 3),
                "latency_p50_s": round(
                    latencies[len(latencies) // 2], 3),
                "latency_p99_s": round(
                    latencies[min(len(latencies) - 1,
                                  round(0.99 * len(latencies)))], 3),
                "deaths": len(service.pool.deaths),
                "concurrent_peak": service.running_peak,
                "mean_gap_s": mean_gap,
                "mtbf_s": mtbf,
                "chains": rows,
            }


def main() -> int:
    args = parse_args()
    n_chains = 6 if args.check else args.chains
    records = 32 if args.check else args.records

    isolation = isolation_experiment(args.records)
    iso_rows = isolation["chains"]
    print(f"isolation: peak {isolation['concurrent_peak']} concurrent, "
          f"{isolation['deaths']} death(s); "
          f"a={iso_rows['a']['job_kinds']} b={iso_rows['b']['job_kinds']}")

    stream = throughput_experiment(n_chains, records, args.mean_gap,
                                   args.mtbf, args.seed)
    print(f"stream: {stream['n_chains']} chains in {stream['wall_s']}s "
          f"({stream['chains_per_sec']} chains/s), "
          f"p50 {stream['latency_p50_s']}s p99 {stream['latency_p99_s']}s, "
          f"{stream['deaths']} death(s), peak {stream['concurrent_peak']}")

    payload = {
        "pool": {"nodes": POOL_NODES, "task_slots": TASK_SLOTS},
        "check_mode": args.check,
        "cpu_count": os.cpu_count(),
        "isolation": isolation,
        "stream": stream,
    }
    write_payload(payload, "BENCH_service.json", args.out)

    failures = []
    if isolation["concurrent_peak"] < 3:
        failures.append(f"only {isolation['concurrent_peak']} chains ran "
                        "concurrently on the shared pool (need >= 3)")
    for name, row in {**iso_rows,
                      **{r["id"]: r for r in stream["chains"]}}.items():
        if row["state"] != "done" or not row["checksum_ok"]:
            failures.append(f"chain {name}: state={row['state']} "
                            f"checksum_ok={row['checksum_ok']} "
                            f"error={row['error']}")
    if not any(k in ("recompute", "rerun")
               for k in iso_rows["a"]["job_kinds"] or []):
        failures.append("the kill never cascaded chain a "
                        f"({iso_rows['a']['job_kinds']})")
    if iso_rows["b"]["job_kinds"] != ["run"] * 4:
        failures.append("chain b held no pieces on the dead node but its "
                        f"timeline was disturbed: "
                        f"{iso_rows['b']['job_kinds']}")
    if stream["deaths"] < 1:
        failures.append("the MTBF arrivals never fired during the stream")
    return finish(failures)


if __name__ == "__main__":
    raise SystemExit(main())
