#!/usr/bin/env python
"""Straggler benchmark: completion time under a throttled node, A/B.

One pinned straggler (``slow@1:F`` for F in {2, 10}) on the 4-node
process backend, across the four execution strategies, with speculative
recomputation off and on.  Every run is checksum-verified against the
failure-free in-process reference and must finish with **zero declared
deaths** — a throttled node is slow, never dead, and must never be
cascade-recovered.  Two follow-on scenarios cover the recovery surface:

* **straggler + kill**: the 10x straggler composes with a real SIGKILL
  of a healthy peer; completion splits into run time vs recovery time.
* **pre-replication**: speculation off, ``pre_replicate`` on — the
  suspected node's committed pieces gain healthy second holders.

Results land in ``benchmarks/BENCH_straggler.json`` (committed — the
perf trajectory record).  ``--check`` re-runs at a reduced scale and
fails non-zero unless speculation beats speculation-off at 10x for all
four strategies — the CI smoke for the tail-latency headline claim.

Usage::

    PYTHONPATH=src python benchmarks/run_straggler_bench.py
    PYTHONPATH=src python benchmarks/run_straggler_bench.py --check
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

from common import (
    add_check_and_out,
    finish,
    reference_checksum,
    write_payload,
)

from repro.faults import FaultModel
from repro.localexec import LocalJobConfig
from repro.runtime import Coordinator, RuntimeConfig

STRATEGIES = ("rcmp", "optimistic", "repl2", "hybrid")
FACTORS = (2, 10)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=192,
                        help="chain input records per node")
    parser.add_argument("--jobs", type=int, default=3)
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per (strategy, factor, mode), best-of")
    add_check_and_out(parser, "BENCH_straggler.json")
    return parser.parse_args()


def run_chain(chain: LocalJobConfig, expected: str, faults: str,
              **config_kwargs):
    config = RuntimeConfig(n_nodes=4, chain=chain, task_slots=2,
                           **config_kwargs)
    model = FaultModel.parse(faults) if faults else None
    with tempfile.TemporaryDirectory(prefix="rcmp-straggler-") as workdir:
        with Coordinator(config, workdir, fault_model=model) as coord:
            report = coord.run_chain()
    if report.checksum != expected:
        raise SystemExit(f"checksum mismatch under {config_kwargs} "
                         f"faults={faults!r}: "
                         f"{report.checksum} != {expected}")
    return report


def summarize(report) -> dict:
    recovery = sum(w for _, kind, w in report.job_times if kind != "run")
    return {
        "wall_s": round(report.wall_time, 3),
        "recovery_s": round(recovery, 3),
        "deaths": len(report.deaths),
        "attempts": report.speculation.get("attempts", 0),
        "wins": report.speculation.get("wins", 0),
        "wasted_bytes": report.speculation.get("wasted_bytes", 0),
    }


def straggler_ab(chain: LocalJobConfig, expected: str, strategy: str,
                 factor: int, repeat: int, failures: list) -> dict:
    """Speculation off vs on under ``slow@1:factor``, best-of-N."""
    result = {}
    for label, spec in (("spec_off", False), ("spec_on", True)):
        best = None
        for _ in range(repeat):
            report = run_chain(chain, expected, f"slow@1:{factor}",
                               strategy=strategy, speculation=spec,
                               speculation_min_age=0.02)
            if report.deaths:
                failures.append(
                    f"{strategy}@{factor}x/{label}: throttled-but-alive "
                    f"node declared dead ({report.deaths})")
            row = summarize(report)
            if best is None or row["wall_s"] < best["wall_s"]:
                best = row
        result[label] = best
    result["speedup"] = round(result["spec_off"]["wall_s"]
                              / max(1e-9, result["spec_on"]["wall_s"]), 3)
    return result


def main() -> int:
    args = parse_args()
    jobs = 2 if args.check else args.jobs
    repeat = 2 if args.check else args.repeat
    chain = LocalJobConfig(n_jobs=jobs, n_partitions=args.partitions,
                           records_per_node=args.records,
                           records_per_block=16, split_ratio=2, seed=0)
    expected = reference_checksum(chain)
    failures: list[str] = []

    t0 = time.perf_counter()
    matrix: dict = {}
    for strategy in STRATEGIES:
        matrix[strategy] = {}
        for factor in FACTORS:
            ab = straggler_ab(chain, expected, strategy, factor,
                              repeat, failures)
            matrix[strategy][f"{factor}x"] = ab
            print(f"{strategy:>10s} @{factor:>2d}x: "
                  f"spec-off {ab['spec_off']['wall_s']}s vs "
                  f"spec-on {ab['spec_on']['wall_s']}s "
                  f"(speedup {ab['speedup']}x, "
                  f"{ab['spec_on']['attempts']} attempts)")

    # a 10x straggler composed with a real kill of a healthy peer:
    # recovery and speculation must coexist
    with_kill: dict = {}
    for strategy in STRATEGIES:
        report = run_chain(chain, expected,
                           "slow@1:10; kill@job2+0:node=2",
                           strategy=strategy, speculation=True,
                           speculation_min_age=0.02)
        row = summarize(report)
        with_kill[strategy] = row
        if row["deaths"] != 1:
            failures.append(f"{strategy} straggler+kill: expected exactly "
                            f"one death, saw {row['deaths']}")
        print(f"{strategy:>10s} +kill: {row['wall_s']}s "
              f"({row['recovery_s']}s recovering)")

    # pre-replication: the straggler's sole-copy pieces gain healthy
    # second holders while it is merely suspected
    report = run_chain(chain, expected, "slow@1:10",
                       pre_replicate=True)
    pre = summarize(report)
    pre["pre_replicated"] = report.speculation.get("pre_replicated", 0)
    print(f"pre-replicate: {pre['pre_replicated']} pieces copied off the "
          f"straggler in {pre['wall_s']}s")
    if pre["pre_replicated"] < 1:
        failures.append("pre-replication copied nothing off the straggler")
    if pre["deaths"]:
        failures.append("pre-replication run declared the straggler dead")

    payload = {
        "chain": {"jobs": jobs, "partitions": args.partitions,
                  "records_per_node": args.records, "nodes": 4,
                  "task_slots": 2},
        "check_mode": args.check,
        "cpu_count": os.cpu_count(),
        "straggler": matrix,
        "straggler_plus_kill": with_kill,
        "pre_replication": pre,
        "bench_wall_s": round(time.perf_counter() - t0, 1),
    }
    write_payload(payload, "BENCH_straggler.json", args.out)

    for strategy in STRATEGIES:
        ab = matrix[strategy]["10x"]
        if ab["spec_on"]["wall_s"] >= ab["spec_off"]["wall_s"]:
            failures.append(
                f"{strategy}@10x: speculation did not cut completion "
                f"({ab['spec_on']['wall_s']}s >= "
                f"{ab['spec_off']['wall_s']}s)")
        if ab["spec_on"]["attempts"] < 1:
            failures.append(f"{strategy}@10x: speculation never attempted "
                            "a backup — the comparison is vacuous")
    return finish(failures)


if __name__ == "__main__":
    raise SystemExit(main())
