"""Bench: regenerate Fig. 10 (chain-length extrapolation)."""


def test_fig10_chain_length_extrapolation(benchmark, scale, record_report):
    from repro.experiments import fig10

    report = benchmark.pedantic(lambda: fig10.run(scale), rounds=1,
                                iterations=1)
    record_report(report)
    rows = {c.label: c.measured for c in report.rows}

    for name in ("HADOOP REPL-2", "HADOOP REPL-3"):
        l10 = rows[f"{name} slowdown @ L=10"]
        l100 = rows[f"{name} slowdown @ L=100"]
        spread = rows[f"{name} spread over L (max-min)"]
        # RCMP wins at every chain length ...
        assert l10 > 1.0 and l100 > 1.0
        # ... and its relative benefit is stable in chain length
        assert spread < 0.25 * max(l10, l100)
    # REPL-3's overhead exceeds REPL-2's at every length
    assert rows["HADOOP REPL-3 slowdown @ L=50"] > \
        rows["HADOOP REPL-2 slowdown @ L=50"]
