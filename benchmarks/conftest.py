"""Benchmark configuration.

Scale selection: set ``REPRO_SCALE`` to ``ci`` (fast sanity), ``bench``
(default: STIC at paper scale, DCO trimmed) or ``paper`` (full 1.2 TB DCO
columns; minutes of wall time per figure).

Each benchmark runs its experiment exactly once (``pedantic``): the
measured quantity is the wall time of regenerating the figure, and the
figure's paper-vs-measured table is printed to the terminal (run with
``-s`` to see them inline) and collected into ``benchmarks/last_run.md``.
"""

import os
from pathlib import Path

import pytest

_REPORTS: list[str] = []


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "bench")


@pytest.fixture
def record_report():
    def _record(report) -> None:
        text = report.render()
        print("\n" + text)
        _REPORTS.append(text)

    return _record


def pytest_sessionfinish(session, exitstatus):
    if _REPORTS:
        out = Path(__file__).parent / "last_run.md"
        body = "\n\n".join(f"```\n{text}\n```" for text in _REPORTS)
        out.write_text("# Regenerated figures (last benchmark run)\n\n"
                       + body + "\n")
    del session, exitstatus
