#!/usr/bin/env python
"""Cross-run cache benchmark: overlapping chains, warm vs cold.

Three experiments on a resident :class:`ChainService` (4-node pool,
2-slot workers), every chain checksum-verified against its failure-free
in-process reference:

* **overlap**: a six-chain workload whose submissions share lineage
  prefixes (same seed, different chain lengths, one exact repeat) runs
  once on a cache-enabled service and once cold.  The cached pass must
  adopt more than half the workload's job outputs (hit rate > 0.5) and
  finish measurably faster — the headline claim.
* **kill**: a chain riding a 3-job cached prefix loses a node holding
  adopted pieces mid-run.  The cache entries are invalidated, RCMP
  recovery recomputes the adopted jobs, and the output stays
  byte-identical — cached results need no replication because
  recomputation *is* the fallback.
* **eviction**: a byte budget sized for one chain forces LRU eviction
  across disjoint workloads; evicted chains simply run cold again,
  still byte-exact, and the registry never exceeds its budget.

Results land in ``benchmarks/BENCH_cache.json`` (committed — the perf
trajectory record).  ``--check`` re-runs at a reduced scale with the
same hard assertions — the CI smoke for the cache's headline claims.

Usage::

    PYTHONPATH=src python benchmarks/run_cache_bench.py
    PYTHONPATH=src python benchmarks/run_cache_bench.py --check
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

from common import (
    add_check_and_out,
    finish,
    reference_checksum,
    write_payload,
)

from repro.localexec import LocalJobConfig
from repro.runtime import ChainService, RuntimeConfig

POOL_NODES = 4
TASK_SLOTS = 2


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=96,
                        help="chain input records per node")
    parser.add_argument("--partitions", type=int, default=4)
    add_check_and_out(parser, "BENCH_cache.json")
    return parser.parse_args()


def pool_config() -> RuntimeConfig:
    return RuntimeConfig(n_nodes=POOL_NODES, chain=LocalJobConfig(),
                         task_slots=TASK_SLOTS)


def make_chain(n_jobs: int, seed: int, records: int,
               partitions: int) -> LocalJobConfig:
    return LocalJobConfig(n_jobs=n_jobs, n_partitions=partitions,
                          records_per_node=records,
                          records_per_block=16, seed=seed)


def workload(records: int, partitions: int) -> list[LocalJobConfig]:
    """Six chains with heavy prefix overlap: two seed families, varied
    lengths, one exact repeat — 25 job outputs, 15 of them adoptable."""
    shape = [(3, 0), (5, 0), (4, 0), (3, 1), (5, 1), (5, 0)]
    return [make_chain(n, s, records, partitions) for n, s in shape]


def run_pass(chains: list[LocalJobConfig], cache_budget) -> dict:
    """Run the workload sequentially on one service; wall-clock covers
    submission to completion, not pool startup."""
    rows = []
    with tempfile.TemporaryDirectory(prefix="rcmp-cache-") as workdir:
        with ChainService(pool_config(), workdir,
                          cache_budget=cache_budget) as service:
            t0 = time.perf_counter()
            for chain in chains:
                job = service.submit(chain=chain)
                service.wait(job.id, timeout=300)
                rows.append({
                    "id": job.id,
                    "n_jobs": chain.n_jobs,
                    "seed": chain.seed,
                    "state": job.state,
                    "cached_jobs": job.adopted_jobs,
                    "job_kinds": [k for _, k, _ in job.report.job_times]
                    if job.report else None,
                    "checksum_ok": bool(
                        job.report and job.report.checksum
                        == reference_checksum(chain)),
                    "latency_s": round(job.finished - job.submitted, 3),
                })
            wall = time.perf_counter() - t0
            stats = service.cache.stats() if service.cache else None
    return {"wall_s": round(wall, 3), "chains": rows, "cache": stats}


def overlap_experiment(records: int, partitions: int,
                       failures: list) -> dict:
    chains = workload(records, partitions)
    warm = run_pass(chains, cache_budget=64 << 20)
    cold = run_pass(chains, cache_budget=None)
    saved = 1.0 - warm["wall_s"] / max(1e-9, cold["wall_s"])
    result = {
        "n_chains": len(chains),
        "total_jobs": sum(c.n_jobs for c in chains),
        "warm": warm,
        "cold": cold,
        "saved_frac": round(saved, 3),
    }
    for label, a_pass in (("warm", warm), ("cold", cold)):
        for row in a_pass["chains"]:
            if row["state"] != "done" or not row["checksum_ok"]:
                failures.append(
                    f"overlap/{label} {row['id']}: state={row['state']} "
                    f"checksum_ok={row['checksum_ok']}")
    rate = warm["cache"]["hit_rate"]
    if rate <= 0.5:
        failures.append(f"hit rate {rate} <= 0.5 on the overlap workload")
    if warm["wall_s"] >= cold["wall_s"]:
        failures.append(
            f"cached pass was not faster: warm {warm['wall_s']}s vs "
            f"cold {cold['wall_s']}s")
    return result


def kill_experiment(records: int, partitions: int,
                    failures: list) -> dict:
    """Kill a node while a chain rides its adopted prefix: recovery must
    recompute the cached jobs and match the cold reference byte-for-
    byte."""
    short = make_chain(3, 0, records, partitions)
    long = make_chain(5, 0, records, partitions)
    with tempfile.TemporaryDirectory(prefix="rcmp-cache-") as workdir:
        with ChainService(pool_config(), workdir,
                          cache_budget=64 << 20) as service:
            warmup = service.submit(chain=short)
            service.wait(warmup.id, timeout=300)
            victim = service.submit(chain=long)
            deadline = time.monotonic() + 60.0
            while victim.state == "queued" \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
            service.pool.kill_node(1)
            service.wait(victim.id, timeout=300)
            row = {
                "state": victim.state,
                "cached_jobs": victim.adopted_jobs,
                "job_kinds": [k for _, k, _ in victim.report.job_times]
                if victim.report else None,
                "deaths": len(victim.report.deaths)
                if victim.report else None,
                "checksum_ok": bool(
                    victim.report and victim.report.checksum
                    == reference_checksum(long)),
                "invalidated": service.cache.stats()["invalidated"],
            }
    if row["state"] != "done" or not row["checksum_ok"]:
        failures.append(f"kill: state={row['state']} "
                        f"checksum_ok={row['checksum_ok']}")
    if row["cached_jobs"] < 1:
        failures.append("kill: the victim chain adopted nothing — the "
                        "scenario is vacuous")
    if row["job_kinds"] and "recompute" not in row["job_kinds"]:
        failures.append("kill: no adopted job was recomputed "
                        f"({row['job_kinds']})")
    return row


def eviction_experiment(records: int, partitions: int,
                        failures: list) -> dict:
    """A budget sized for roughly one chain forces LRU eviction across
    disjoint seeds; an evicted chain re-runs cold and stays correct."""
    first = make_chain(3, 0, records, partitions)
    second = make_chain(3, 7, records, partitions)
    # measure one chain's cache footprint, then budget just above it
    with tempfile.TemporaryDirectory(prefix="rcmp-cache-") as workdir:
        with ChainService(pool_config(), workdir,
                          cache_budget=64 << 20) as service:
            job = service.submit(chain=first)
            service.wait(job.id, timeout=300)
            footprint = service.cache.stats()["bytes"]
    budget = int(footprint * 1.2)
    with tempfile.TemporaryDirectory(prefix="rcmp-cache-") as workdir:
        with ChainService(pool_config(), workdir,
                          cache_budget=budget) as service:
            checks = []
            for chain in (first, second, first):
                job = service.submit(chain=chain)
                service.wait(job.id, timeout=300)
                checks.append(bool(
                    job.report and job.report.checksum
                    == reference_checksum(chain)))
            stats = service.cache.stats()
    row = {"one_chain_bytes": footprint, "budget_bytes": budget,
           "evictions": stats["evictions"], "bytes": stats["bytes"],
           "checksums_ok": checks}
    if not all(checks):
        failures.append(f"eviction: checksum broke ({checks})")
    if stats["evictions"] < 1:
        failures.append("eviction: the budget never forced an eviction")
    if stats["bytes"] > budget:
        failures.append(f"eviction: registry holds {stats['bytes']}B "
                        f"over the {budget}B budget")
    return row


def main() -> int:
    args = parse_args()
    records = 32 if args.check else args.records
    failures: list[str] = []

    t0 = time.perf_counter()
    overlap = overlap_experiment(records, args.partitions, failures)
    rate = overlap["warm"]["cache"]["hit_rate"]
    print(f"overlap: warm {overlap['warm']['wall_s']}s vs cold "
          f"{overlap['cold']['wall_s']}s (saved "
          f"{overlap['saved_frac']:.0%}), hit rate {rate}")

    kill = kill_experiment(records, args.partitions, failures)
    print(f"kill: adopted {kill['cached_jobs']}, kinds "
          f"{kill['job_kinds']}, {kill['invalidated']} entries "
          f"invalidated, checksum_ok={kill['checksum_ok']}")

    eviction = eviction_experiment(records, args.partitions, failures)
    print(f"eviction: {eviction['evictions']} evicted under a "
          f"{eviction['budget_bytes']}B budget, "
          f"{eviction['bytes']}B resident")

    payload = {
        "pool": {"nodes": POOL_NODES, "task_slots": TASK_SLOTS},
        "chain": {"records_per_node": records,
                  "partitions": args.partitions},
        "check_mode": args.check,
        "cpu_count": os.cpu_count(),
        "overlap": overlap,
        "kill_during_cached_prefix": kill,
        "eviction": eviction,
        "bench_wall_s": round(time.perf_counter() - t0, 1),
    }
    write_payload(payload, "BENCH_cache.json", args.out)
    return finish(failures)


if __name__ == "__main__":
    raise SystemExit(main())
