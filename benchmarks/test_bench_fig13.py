"""Bench: regenerate Fig. 13 (speed-up vs reducer waves)."""


def test_fig13_reducer_wave_speedup(benchmark, scale, record_report):
    from repro.experiments import fig13

    report = benchmark.pedantic(lambda: fig13.run(scale), rounds=1,
                                iterations=1)
    record_report(report)
    rows = {c.label: c.measured for c in report.rows}

    fast = [rows[f"FAST SHUFFLE waves {w}:1"] for w in fig13.WAVE_RATIOS]
    slow = [rows[f"SLOW SHUFFLE waves {w}:1"] for w in fig13.WAVE_RATIOS]

    if scale == "ci":
        assert all(v > 0 for v in fast + slow)
        return
    # speed-up grows with the wave ratio under both networks
    assert fast[0] < fast[1] < fast[2]
    assert slow[0] < slow[1] < slow[2]
    # SLOW scales ~linearly: 4:1 gains at least ~2.7x over 1:1 ...
    assert slow[2] / slow[0] > 2.5
    # ... while FAST is sub-linear relative to SLOW at 4:1 (its first
    # initial wave overlaps the map phase and dominates)
    assert fast[2] / fast[0] < slow[2] / slow[0]
