"""Bench: regenerate Fig. 12 (hot-spot mapper-time CDFs)."""


def test_fig12_hotspot_cdfs(benchmark, scale, record_report):
    from repro.experiments import fig12

    report = benchmark.pedantic(lambda: fig12.run(scale), rounds=1,
                                iterations=1)
    record_report(report)
    rows = {c.label: c.measured for c in report.rows}

    med_split = rows["median recomputation mapper, SPLIT-8 (s)"]
    med_nosplit = rows["median recomputation mapper, NO-SPLIT (s)"]
    p90_split = rows["p90 recomputation mapper, SPLIT-8 (s)"]
    p90_nosplit = rows["p90 recomputation mapper, NO-SPLIT (s)"]

    if scale != "ci":
        # the hot-spot: NO-SPLIT's mapper distribution sits far right of
        # SPLIT's (paper: whole CDF shifted, tail reaching ~80 s)
        assert med_nosplit > med_split * 1.5
        assert p90_nosplit > med_nosplit  # contention spreads the tail
        # reducer medians improve with splitting (paper: 103 s -> 53 s)
        red_split = rows["median recomputation reducer, SPLIT (s)"]
        red_nosplit = rows["median recomputation reducer, NOSPLIT (s)"]
        assert red_nosplit > red_split * 1.4
    else:
        assert med_nosplit >= med_split * 0.95
    del p90_split
