"""Bench: regenerate Fig. 2 (failures-per-day CDFs)."""


def test_fig2_failure_trace_cdf(benchmark, scale, record_report):
    from repro.experiments import fig2

    report = benchmark.pedantic(lambda: fig2.run(scale), rounds=1,
                                iterations=1)
    record_report(report)
    rows = {c.label: c for c in report.rows}
    stic = rows["STIC: CDF at 0 failures/day (%)"]
    sugar = rows["SUG@R: CDF at 0 failures/day (%)"]
    # shape: most days see no failures, matching §III-A's 17% / 12%
    assert abs(stic.measured - stic.paper) < 4.0
    assert abs(sugar.measured - sugar.paper) < 4.0
    assert sugar.measured > stic.measured  # SUG@R fails less often
