#!/usr/bin/env python
"""Per-strategy wall-clock comparison on the process backend.

Runs the same record-level chain under every runtime strategy — same
nodes, same kill plan, real worker processes — and writes a side-by-side
table to ``benchmarks/exec_strategies.md`` plus a machine-readable
``exec_strategies.json`` next to it (untracked output, the
``last_run.md`` convention).  Every run's checksum is verified against
the failure-free in-process reference, so the numbers are only reported
for *correct* recoveries.

Usage::

    PYTHONPATH=src python benchmarks/run_exec_strategies.py
    PYTHONPATH=src python benchmarks/run_exec_strategies.py \
        --jobs 5 --faults "kill@job3+0:node=1" --hybrid-reclaim
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.faults import FaultModel
from repro.localexec import LocalCluster, LocalJobConfig
from repro.runtime import Coordinator, RuntimeConfig, chain_checksum

STRATEGIES = ("rcmp", "optimistic", "repl2", "hybrid")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--records", type=int, default=96,
                        help="chain input records per node")
    parser.add_argument("--block", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--faults", default="kill@job2+0:node=1",
                        help="fault plan applied identically to every "
                             "strategy (empty string = failure-free)")
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument("--hybrid-interval", type=int, default=2)
    parser.add_argument("--hybrid-reclaim", action="store_true",
                        help="reclaim persisted files behind hybrid "
                             "anchors")
    parser.add_argument("--out", default=None,
                        help="output markdown path (default: "
                             "benchmarks/exec_strategies.md)")
    return parser.parse_args()


def reference_checksum(chain: LocalJobConfig, n_nodes: int) -> str:
    cluster = LocalCluster(n_nodes, chain)
    cluster.run_chain()
    return chain_checksum(cluster.final_output())


def run_one(strategy: str, chain: LocalJobConfig,
            args: argparse.Namespace):
    kwargs = {}
    if strategy == "hybrid":
        kwargs = {"hybrid_interval": args.hybrid_interval,
                  "hybrid_reclaim": args.hybrid_reclaim}
    config = RuntimeConfig(n_nodes=args.nodes, chain=chain,
                           strategy=strategy, **kwargs)
    model = FaultModel.parse(args.faults) if args.faults else None
    with tempfile.TemporaryDirectory(prefix="rcmp-bench-") as workdir:
        t0 = time.perf_counter()
        with Coordinator(config, workdir, fault_model=model,
                         fault_seed=args.fault_seed) as coord:
            report = coord.run_chain()
        return report, time.perf_counter() - t0


def main() -> int:
    args = parse_args()
    chain = LocalJobConfig(n_jobs=args.jobs, n_partitions=args.partitions,
                           records_per_node=args.records,
                           records_per_block=args.block, seed=args.seed)
    expected = reference_checksum(chain, args.nodes)
    rows = []
    for strategy in STRATEGIES:
        report, wall = run_one(strategy, chain, args)
        kinds = [k for _, k, _ in report.job_times]
        rows.append({
            "strategy": strategy,
            "wall": wall,
            "deaths": len(report.deaths),
            "recomputes": kinds.count("recompute"),
            "reruns": kinds.count("rerun"),
            "re_repl": kinds.count("re-replicate"),
            "reclaimed": report.reclaimed_bytes,
            "shuffle_bytes": report.total_shuffle_bytes,
            "ok": report.checksum == expected,
        })
        print(f"{strategy:<12s} {wall:7.2f}s  deaths={len(report.deaths)}"
              f"  checksum={'ok' if rows[-1]['ok'] else 'MISMATCH'}")

    header = (f"# Process-backend strategy comparison\n\n"
              f"chain: {args.jobs} jobs x {args.partitions} partitions, "
              f"{args.records} records/node on {args.nodes} nodes; "
              f"faults: `{args.faults or 'none'}`\n\n")
    table = ["| strategy | wall (s) | deaths | recomputes | reruns "
             "| re-replications | reclaimed (B) | checksum |",
             "|---|---|---|---|---|---|---|---|"]
    for row in rows:
        table.append(
            f"| {row['strategy']} | {row['wall']:.2f} | {row['deaths']} "
            f"| {row['recomputes']} | {row['reruns']} | {row['re_repl']} "
            f"| {row['reclaimed']} "
            f"| {'ok' if row['ok'] else 'MISMATCH'} |")
    out = Path(args.out) if args.out else \
        Path(__file__).parent / "exec_strategies.md"
    out.write_text(header + "\n".join(table) + "\n")
    payload = {
        "chain": {"jobs": args.jobs, "partitions": args.partitions,
                  "records_per_node": args.records, "nodes": args.nodes,
                  "seed": args.seed},
        "faults": args.faults or None,
        "rows": rows,
    }
    json_out = out.with_suffix(".json")
    json_out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwritten to {out} and {json_out}")
    return 0 if all(row["ok"] for row in rows) else 1


if __name__ == "__main__":
    raise SystemExit(main())
