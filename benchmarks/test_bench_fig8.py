"""Bench: regenerate Fig. 8 (overall comparison, slowdown factors).

Shape assertions follow the paper's findings, not its absolute numbers:
replication pays on every failure-free run (REPL-2 < REPL-3, both slower
than RCMP); under single failures RCMP stays fastest-or-comparable; the
SPLIT vs NO-SPLIT gap is larger for the late failure; OPTIMISTIC collapses
when the failure is late.
"""


def rows_by_prefix(report, prefix):
    return {c.label: c.measured for c in report.rows
            if c.label.startswith(prefix)}


def test_fig8_overall_comparison(benchmark, scale, record_report):
    from repro.experiments import fig8

    report = benchmark.pedantic(lambda: fig8.run(scale), rounds=1,
                                iterations=1)
    record_report(report)

    for bed in ("STIC 1-1", "STIC 2-2"):
        a = rows_by_prefix(report, f"8a [{bed}]")
        # 8a: replication strictly ordered, RCMP/OPTIMISTIC at 1.0
        assert a[f"8a [{bed}] RCMP SPLIT"] <= 1.02
        assert a[f"8a [{bed}] OPTIMISTIC"] <= 1.05
        assert 1.1 < a[f"8a [{bed}] HADOOP REPL-2"] \
            < a[f"8a [{bed}] HADOOP REPL-3"] <= 2.3

        # 8c: OPTIMISTIC is the big loser on a late failure
        c = rows_by_prefix(report, f"8c [{bed}]")
        assert c[f"8c [{bed}] OPTIMISTIC"] > 1.5
        # RCMP SPLIT within ~15% of the fastest strategy even under failure
        assert c[f"8c [{bed}] RCMP SPLIT"] <= 1.15
        # splitting never hurts
        assert c[f"8c [{bed}] RCMP SPLIT"] <= \
            c[f"8c [{bed}] RCMP NO-SPLIT"] + 0.02

    # the SPLIT/NO-SPLIT gap grows from 8b (1 recomputation) to 8c (6)
    for bed in ("STIC 1-1",):
        b = rows_by_prefix(report, f"8b [{bed}]")
        c = rows_by_prefix(report, f"8c [{bed}]")
        gap_b = b[f"8b [{bed}] RCMP NO-SPLIT"] - b[f"8b [{bed}] RCMP SPLIT"]
        gap_c = c[f"8c [{bed}] RCMP NO-SPLIT"] - c[f"8c [{bed}] RCMP SPLIT"]
        assert gap_c >= gap_b - 0.02
