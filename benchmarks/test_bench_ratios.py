"""Bench: the §V-A ratio prediction (no paper figure).

"The relative benefits of RCMP vs Hadoop are expected to increase when the
job output is relatively larger compared to the input and shuffle."
"""


def test_ratio_sweep_output_weight(benchmark, scale, record_report):
    from repro.experiments import ratios

    report = benchmark.pedantic(lambda: ratios.run(scale), rounds=1,
                                iterations=1)
    record_report(report)
    values = [c.measured for c in report.rows]
    # REPL-3's slowdown grows monotonically with the output weight
    assert all(a < b for a, b in zip(values, values[1:]))
    # and the output-heavy end clearly exceeds the paper's 1/1/1 band
    assert values[-1] > values[1] * 1.15