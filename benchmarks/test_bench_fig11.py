"""Bench: regenerate Fig. 11 (recomputation speed-up vs cluster size)."""


def test_fig11_speedup_vs_nodes(benchmark, scale, record_report):
    from repro.experiments import fig11

    report = benchmark.pedantic(lambda: fig11.run(scale), rounds=1,
                                iterations=1)
    record_report(report)
    rows = {c.label: c.measured for c in report.rows}
    counts = sorted({int(label.split()[0][2:]) for label in rows})

    split = [rows[f"N={n} RCMP SPLIT"] for n in counts]
    nosplit = [rows[f"N={n} RCMP NO-SPLIT"] for n in counts]

    # splitting always beats no-split
    for s, ns in zip(split, nosplit):
        assert s > ns

    if len(counts) >= 2:
        # SPLIT's speed-up grows strongly with the node count ...
        assert split[-1] > split[0] * 1.3
        # ... while NO-SPLIT stays nearly flat (one node still recomputes
        # the whole lost reducer)
        assert nosplit[-1] < nosplit[0] * 1.6
