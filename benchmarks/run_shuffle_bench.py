#!/usr/bin/env python
"""Shuffle data-plane benchmarks: bytes shipped and wall-clock, A/B.

Two suites on the process backend, every run checksum-verified against
the failure-free in-process reference.  ``--suite`` selects one
(default: both).

**shuffle** (``benchmarks/BENCH_shuffle.json``):

* **split-filter**: a kill forces a 2-way split recomputation; the run
  is repeated with server-side split filtering on and off and the
  recompute-reduce shuffle bytes are compared.  Filtering must ship
  about ``1/k`` of the unfiltered bytes (each split reducer receives
  only its share of the partition instead of all of it).
* **pipeline**: the same failure-free chain on the serial data plane
  (1 task slot, 1 fetch at a time, connection-per-request, client-side
  filtering — the pre-pipelining runtime) versus the pipelined one
  (4 slots, 4-way parallel fetch, persistent connections); wall-clock
  is the metric.

**memplane** (``benchmarks/BENCH_memplane.json``) — the memory-tier
data plane:

* **codec**: the vectorized preallocating ``encode_records`` against
  the per-record list + join it replaced (microbenchmark).
* **tier A/B**: the chain with the memory tier off (``memory_budget=0``
  — every read hits disk files) versus on, failure-free and through a
  kill; wall-clock is the metric.
* **colocation**: the same workload spread over 4 single-slot nodes
  versus packed onto 2 two-slot nodes; colocated slots resolve their
  own node's bytes in-process, so ``shuffle_bytes_tcp`` must drop and
  ``shuffle_bytes_local`` must rise.
* **matrix**: the differential checksum matrix — chain shapes x
  strategies x kill schedules, each under tier off / on / a
  deliberately tiny budget that spills constantly — every cell must
  reproduce the reference checksum byte-for-byte (``run_chain`` aborts
  on the first mismatch).

``--check`` re-runs at reduced scale and fails non-zero on any violated
claim — the CI smoke for the data plane's headline claims.

Usage::

    PYTHONPATH=src python benchmarks/run_shuffle_bench.py
    PYTHONPATH=src python benchmarks/run_shuffle_bench.py --check
    PYTHONPATH=src python benchmarks/run_shuffle_bench.py --suite memplane
"""

from __future__ import annotations

import argparse
import os
import statistics
import tempfile
import time

from common import (
    add_check_and_out,
    codec_bench,
    finish,
    reference_checksum,
    write_payload,
)

from repro.faults import FaultModel
from repro.localexec import LocalJobConfig
from repro.runtime import Coordinator, RuntimeConfig
from repro.workloads import cube_dependencies, shape_dependencies

#: wall-clock slack for the pipelined-vs-serial comparison: on a
#: single-core host the slot threads only overlap I/O, so the win is
#: smaller and noisier (same convention as the 4-vs-1-node test)
WALL_MARGIN = 1.25 if (os.cpu_count() or 1) < 2 else 1.05
SPLIT_EPS = 0.25


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", choices=("shuffle", "memplane", "all"),
                        default="all")
    parser.add_argument("--records", type=int, default=256,
                        help="chain input records per node")
    parser.add_argument("--value-size", type=int, default=64)
    parser.add_argument("--jobs", type=int, default=3)
    parser.add_argument("--partitions", type=int, default=8)
    parser.add_argument("--repeat", type=int, default=5,
                        help="wall-clock runs per data plane (best-of)")
    parser.add_argument("--memplane-out", default=None,
                        help="memplane payload path (default: "
                             "benchmarks/BENCH_memplane.json)")
    add_check_and_out(parser, "BENCH_shuffle.json")
    return parser.parse_args()


def run_chain(chain: LocalJobConfig, expected: str, faults: str = "",
              n_nodes: int = 4, **config_kwargs):
    config = RuntimeConfig(n_nodes=n_nodes, chain=chain, **config_kwargs)
    model = FaultModel.parse(faults) if faults else None
    with tempfile.TemporaryDirectory(prefix="rcmp-shuffle-") as workdir:
        t0 = time.perf_counter()
        with Coordinator(config, workdir, fault_model=model) as coord:
            report = coord.run_chain()
        wall = time.perf_counter() - t0
    if report.checksum != expected:
        raise SystemExit(f"checksum mismatch under {config_kwargs}: "
                         f"{report.checksum} != {expected}")
    # report.wall_time sums the job phases — worker fork/startup (which
    # no data plane can touch) is excluded from the comparison
    return report, wall


def split_filter_ab(chain: LocalJobConfig, expected: str) -> dict:
    """Kill node 1 after job 2 commits -> a split_ratio-way split
    recomputation; compare recompute-reduce shuffle bytes A/B."""
    result = {"split_ratio": chain.split_ratio}
    for label, filtered in (("filtered", True), ("unfiltered", False)):
        report, wall = run_chain(chain, expected,
                                 faults="kill@job2+0:node=1",
                                 server_split_filter=filtered)
        recompute_bytes = sum(
            n for phase, n in report.shuffle_bytes.items()
            if phase.startswith("recompute-reduce"))
        result[label] = {
            "recompute_reduce_bytes": recompute_bytes,
            "total_shuffle_bytes": report.total_shuffle_bytes,
            "wall_s": round(wall, 3),
        }
    result["bytes_ratio"] = round(
        result["filtered"]["recompute_reduce_bytes"]
        / max(1, result["unfiltered"]["recompute_reduce_bytes"]), 4)
    return result


def pipeline_ab(chain: LocalJobConfig, expected: str, repeat: int,
                faults: str = "") -> dict:
    """Serial vs pipelined data plane on the same chain, best-of-N.
    ``faults`` adds a kill so the comparison covers the recovery hot
    path (split recomputation) as well as the failure-free chain."""
    planes = {
        "serial": dict(task_slots=1, fetch_parallelism=1,
                       persistent_connections=False,
                       server_split_filter=False),
        "pipelined": dict(task_slots=4, fetch_parallelism=4,
                          persistent_connections=True,
                          server_split_filter=True),
    }
    result = {}
    for label, knobs in planes.items():
        walls = []
        for _ in range(repeat):
            report, _outer = run_chain(chain, expected, faults=faults,
                                       **knobs)
            walls.append(report.wall_time)
        result[label] = {
            "wall_s": round(min(walls), 3),
            "walls_s": [round(w, 3) for w in walls],
            "total_shuffle_bytes": report.total_shuffle_bytes,
            "knobs": knobs,
        }
    result["speedup"] = round(result["serial"]["wall_s"]
                              / result["pipelined"]["wall_s"], 3)
    return result


#: tier label -> memory budget handed to the runtime; "tiny" is small
#: enough that every commit evicts something (constant spilling)
TIERS = (("off", 0), ("on", 64 << 20), ("tiny", 4096))


def memory_tier_ab(chain: LocalJobConfig, expected: str, repeat: int,
                   faults: str = "") -> dict:
    """Memory tier off (every read opens the on-disk file) vs on, on
    the same chain.  The two arms interleave and the median wall is the
    statistic — fork/scheduling outliers swing single runs by more than
    the tier effect, so best-of would reward the luckiest run instead
    of the typical one."""
    walls: dict[str, list[float]] = {"file": [], "memory": []}
    reports: dict = {}
    for _ in range(repeat):
        for label, budget in (("file", 0), ("memory", 64 << 20)):
            report, _outer = run_chain(chain, expected, faults=faults,
                                       memory_budget=budget,
                                       task_slots=4)
            walls[label].append(report.wall_time)
            reports[label] = report
    result = {}
    for label, report in reports.items():
        result[label] = {
            "wall_s": round(statistics.median(walls[label]), 3),
            "walls_s": [round(w, 3) for w in walls[label]],
            "shuffle_bytes_tcp": report.total_shuffle_bytes_tcp,
            "shuffle_bytes_local": report.total_shuffle_bytes_local,
        }
    result["speedup"] = round(result["file"]["wall_s"]
                              / result["memory"]["wall_s"], 3)
    return result


def colocation_ab(jobs: int, partitions: int, records: int,
                  value_size: int) -> dict:
    """The same record volume spread over 4 single-slot nodes versus
    packed onto 2 two-slot nodes.  Colocated slots resolve their own
    node's slices and pieces in-process, so packing must shift shuffle
    bytes from the TCP counter to the local one."""
    result = {}
    for label, n_nodes, slots, per_node in (
            ("spread_4x1", 4, 1, records),
            ("packed_2x2", 2, 2, records * 2)):
        chain = LocalJobConfig(n_jobs=jobs, n_partitions=partitions,
                               records_per_node=per_node,
                               records_per_block=16,
                               value_size=value_size,
                               split_ratio=2, seed=0)
        expected = reference_checksum(chain, n_nodes)
        report, wall = run_chain(chain, expected, n_nodes=n_nodes,
                                 task_slots=slots)
        result[label] = {
            "nodes": n_nodes, "task_slots": slots,
            "shuffle_bytes_tcp": report.total_shuffle_bytes_tcp,
            "shuffle_bytes_local": report.total_shuffle_bytes_local,
            "wall_s": round(wall, 3),
        }
    return result


def tier_matrix(records: int, value_size: int, check: bool) -> dict:
    """The differential checksum matrix under the three tier settings.

    Every cell re-runs one (shape, strategy, kill schedule) combination
    with the tier off, on, and tiny-budget; ``run_chain`` aborts the
    bench on the first checksum that differs from the in-process
    reference, so a completed matrix IS the byte-identity proof."""
    base = dict(n_partitions=4, records_per_node=records,
                records_per_block=16, value_size=value_size,
                split_ratio=2, seed=0)
    shapes = {
        "linear": (LocalJobConfig(n_jobs=3, **base),
                   {"single": "kill@job2+0:node=1",
                    "double": "kill@job2+0:node=1; kill@job3+0:node=2"}),
        "diamond": (LocalJobConfig(
                        n_jobs=4,
                        dependencies=shape_dependencies("diamond"), **base),
                    {"single": "kill@job2+0:node=1",
                     "double": "kill@job2+0:node=1; kill@job4+0:node=2"}),
        "cube3": (LocalJobConfig(
                      n_jobs=8, dependencies=cube_dependencies(3), **base),
                  {"single": "kill@job5+0:node=1",
                   "double": "kill@job2+0:node=1; kill@job8+0:node=2"}),
    }
    if check:  # reduced CI slice; the full matrix runs in full mode
        shapes = {k: shapes[k] for k in ("linear", "diamond")}
        strategies = ("rcmp", "repl2")
        schedules = ("single",)
    else:
        strategies = ("rcmp", "optimistic", "repl2", "hybrid")
        schedules = ("none", "single", "double")
    cells = 0
    matrix: dict = {}
    for shape, (chain, kills) in shapes.items():
        expected = reference_checksum(chain)
        matrix[shape] = {}
        for strategy in strategies:
            row = {}
            for label in schedules:
                for tier, budget in TIERS:
                    run_chain(chain, expected, faults=kills.get(label, ""),
                              strategy=strategy, task_slots=2,
                              memory_budget=budget)
                    cells += 1
                row[label] = "byte-identical under " + "/".join(
                    t for t, _ in TIERS)
            matrix[shape][strategy] = row
        print(f"matrix: {shape} ok "
              f"({len(strategies) * len(schedules) * len(TIERS)} cells)")
    return {"cells": cells, "strategies": list(strategies),
            "schedules": list(schedules),
            "tiers": {t: b for t, b in TIERS}, "matrix": matrix}


def shuffle_suite(args, chain: LocalJobConfig, expected: str,
                  repeat: int, failures: list) -> None:
    split = split_filter_ab(chain, expected)
    k = split["split_ratio"]
    print(f"split-filter: filtered "
          f"{split['filtered']['recompute_reduce_bytes']}B vs unfiltered "
          f"{split['unfiltered']['recompute_reduce_bytes']}B "
          f"(ratio {split['bytes_ratio']}, target <= "
          f"{round((1 + SPLIT_EPS) / k, 3)})")

    pipe = pipeline_ab(chain, expected, repeat)
    print(f"pipeline (clean): serial {pipe['serial']['wall_s']}s vs "
          f"pipelined {pipe['pipelined']['wall_s']}s "
          f"(speedup {pipe['speedup']}x, margin {WALL_MARGIN})")
    pipe_kill = pipeline_ab(chain, expected, repeat,
                            faults="kill@job2+0:node=1")
    print(f"pipeline (kill):  serial {pipe_kill['serial']['wall_s']}s vs "
          f"pipelined {pipe_kill['pipelined']['wall_s']}s "
          f"(speedup {pipe_kill['speedup']}x)")

    payload = {
        "chain": {"jobs": args.jobs, "partitions": args.partitions,
                  "records_per_node": chain.records_per_node,
                  "value_size": chain.value_size,
                  "nodes": 4, "split_ratio": k},
        "check_mode": args.check,
        "cpu_count": os.cpu_count(),
        "split_filter": split,
        "pipeline": pipe,
        "pipeline_with_kill": pipe_kill,
    }
    write_payload(payload, "BENCH_shuffle.json", args.out)

    if split["bytes_ratio"] > (1 + SPLIT_EPS) / k:
        failures.append(
            f"split filtering shipped {split['bytes_ratio']} of the "
            f"unfiltered bytes (allowed {(1 + SPLIT_EPS) / k:.3f})")
    best_speedup = max(pipe["speedup"], pipe_kill["speedup"])
    if args.check and best_speedup * WALL_MARGIN < 1.0:
        failures.append(
            f"pipelined plane too slow: best speedup {best_speedup}x "
            f"(clean {pipe['speedup']}x, kill {pipe_kill['speedup']}x, "
            f"margin {WALL_MARGIN})")


def memplane_suite(args, chain: LocalJobConfig, expected: str,
                   repeat: int, failures: list) -> None:
    codec = codec_bench()
    print(f"codec: packed {codec['packed_ms']}ms vs join "
          f"{codec['join_ms']}ms (speedup {codec['speedup']}x)")

    # the tier A/B runs a read-heavy shape (many small slices — the
    # workload where the disk tier pays per-file open/read syscalls the
    # RAM tier does not); check mode reuses the small shared chain
    if args.check:
        tier_chain, tier_expected = chain, expected
    else:
        tier_chain = LocalJobConfig(n_jobs=4, n_partitions=16,
                                    records_per_node=512,
                                    records_per_block=16, value_size=16,
                                    split_ratio=2, seed=0)
        tier_expected = reference_checksum(tier_chain)
    tier_clean = memory_tier_ab(tier_chain, tier_expected, repeat)
    print(f"memory tier (clean): file {tier_clean['file']['wall_s']}s vs "
          f"memory {tier_clean['memory']['wall_s']}s "
          f"(speedup {tier_clean['speedup']}x, margin {WALL_MARGIN})")
    tier_kill = memory_tier_ab(tier_chain, tier_expected, repeat,
                               faults="kill@job2+0:node=1")
    print(f"memory tier (kill):  file {tier_kill['file']['wall_s']}s vs "
          f"memory {tier_kill['memory']['wall_s']}s "
          f"(speedup {tier_kill['speedup']}x)")

    colo = colocation_ab(args.jobs, args.partitions,
                         chain.records_per_node, chain.value_size)
    spread, packed = colo["spread_4x1"], colo["packed_2x2"]
    print(f"colocation: spread tcp {spread['shuffle_bytes_tcp']}B / local "
          f"{spread['shuffle_bytes_local']}B vs packed tcp "
          f"{packed['shuffle_bytes_tcp']}B / local "
          f"{packed['shuffle_bytes_local']}B")

    # the matrix proves byte-identity, not speed — keep the cells small
    # so the 108-cell full sweep stays inside a CI-sized wall budget
    matrix = tier_matrix(96 if args.check else 128, 32, args.check)
    print(f"matrix: {matrix['cells']} cells, all byte-identical")

    payload = {
        "chain": {"jobs": args.jobs, "partitions": args.partitions,
                  "records_per_node": chain.records_per_node,
                  "value_size": chain.value_size, "nodes": 4},
        "check_mode": args.check,
        "cpu_count": os.cpu_count(),
        "codec": codec,
        "memory_tier": {
            "chain": {"jobs": tier_chain.n_jobs,
                      "partitions": tier_chain.n_partitions,
                      "records_per_node": tier_chain.records_per_node,
                      "value_size": tier_chain.value_size, "nodes": 4},
            "clean": tier_clean, "kill": tier_kill},
        "colocation": colo,
        "matrix": matrix,
    }
    write_payload(payload, "BENCH_memplane.json", args.memplane_out)

    if codec["speedup"] < 1.0:
        failures.append(
            f"preallocating codec slower than the join it replaced "
            f"({codec['speedup']}x)")
    if packed["shuffle_bytes_tcp"] >= spread["shuffle_bytes_tcp"]:
        failures.append(
            f"colocated slots did not lower TCP shuffle bytes "
            f"({packed['shuffle_bytes_tcp']}B >= "
            f"{spread['shuffle_bytes_tcp']}B)")
    if packed["shuffle_bytes_local"] <= spread["shuffle_bytes_local"]:
        failures.append(
            f"colocated slots did not raise local shuffle bytes "
            f"({packed['shuffle_bytes_local']}B <= "
            f"{spread['shuffle_bytes_local']}B)")
    best_tier = max(tier_clean["speedup"], tier_kill["speedup"])
    if args.check and best_tier * WALL_MARGIN < 1.0:
        failures.append(
            f"memory tier too slow: best speedup {best_tier}x "
            f"(clean {tier_clean['speedup']}x, kill "
            f"{tier_kill['speedup']}x, margin {WALL_MARGIN})")


def main() -> int:
    args = parse_args()
    records = 96 if args.check else args.records
    value_size = 32 if args.check else args.value_size
    repeat = 2 if args.check else args.repeat
    chain = LocalJobConfig(n_jobs=args.jobs,
                           n_partitions=args.partitions,
                           records_per_node=records,
                           records_per_block=16,
                           value_size=value_size,
                           split_ratio=2, seed=0)
    expected = reference_checksum(chain)

    failures: list[str] = []
    if args.suite in ("shuffle", "all"):
        shuffle_suite(args, chain, expected, repeat, failures)
    if args.suite in ("memplane", "all"):
        memplane_suite(args, chain, expected, repeat, failures)
    return finish(failures)


if __name__ == "__main__":
    raise SystemExit(main())
