#!/usr/bin/env python
"""Pipelined-shuffle benchmark: bytes shipped and wall-clock, A/B.

Two experiments on the 4-node process backend, both checksum-verified
against the failure-free in-process reference:

* **split-filter**: a kill forces a 2-way split recomputation; the run
  is repeated with server-side split filtering on and off and the
  recompute-reduce shuffle bytes are compared.  Filtering must ship
  about ``1/k`` of the unfiltered bytes (each split reducer receives
  only its share of the partition instead of all of it).
* **pipeline**: the same failure-free chain on the serial data plane
  (1 task slot, 1 fetch at a time, connection-per-request, client-side
  filtering — the pre-pipelining runtime) versus the pipelined one
  (4 slots, 4-way parallel fetch, persistent connections); wall-clock
  is the metric.

Results land in ``benchmarks/BENCH_shuffle.json`` (committed — the perf
trajectory record).  ``--check`` re-runs at a reduced scale and fails
non-zero if filtering ships more than ``1/k * (1 + eps)`` of the
unfiltered bytes or the pipelined plane is slower than the margin allows
— the CI smoke for the data plane's two headline claims.

Usage::

    PYTHONPATH=src python benchmarks/run_shuffle_bench.py
    PYTHONPATH=src python benchmarks/run_shuffle_bench.py --check
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

from common import (
    add_check_and_out,
    finish,
    reference_checksum,
    write_payload,
)

from repro.faults import FaultModel
from repro.localexec import LocalJobConfig
from repro.runtime import Coordinator, RuntimeConfig

#: wall-clock slack for the pipelined-vs-serial comparison: on a
#: single-core host the slot threads only overlap I/O, so the win is
#: smaller and noisier (same convention as the 4-vs-1-node test)
WALL_MARGIN = 1.25 if (os.cpu_count() or 1) < 2 else 1.05
SPLIT_EPS = 0.25


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=256,
                        help="chain input records per node")
    parser.add_argument("--value-size", type=int, default=64)
    parser.add_argument("--jobs", type=int, default=3)
    parser.add_argument("--partitions", type=int, default=8)
    parser.add_argument("--repeat", type=int, default=5,
                        help="wall-clock runs per data plane (best-of)")
    add_check_and_out(parser, "BENCH_shuffle.json")
    return parser.parse_args()


def run_chain(chain: LocalJobConfig, expected: str, faults: str = "",
              **config_kwargs):
    config = RuntimeConfig(n_nodes=4, chain=chain, **config_kwargs)
    model = FaultModel.parse(faults) if faults else None
    with tempfile.TemporaryDirectory(prefix="rcmp-shuffle-") as workdir:
        t0 = time.perf_counter()
        with Coordinator(config, workdir, fault_model=model) as coord:
            report = coord.run_chain()
        wall = time.perf_counter() - t0
    if report.checksum != expected:
        raise SystemExit(f"checksum mismatch under {config_kwargs}: "
                         f"{report.checksum} != {expected}")
    # report.wall_time sums the job phases — worker fork/startup (which
    # no data plane can touch) is excluded from the comparison
    return report, wall


def split_filter_ab(chain: LocalJobConfig, expected: str) -> dict:
    """Kill node 1 after job 2 commits -> a split_ratio-way split
    recomputation; compare recompute-reduce shuffle bytes A/B."""
    result = {"split_ratio": chain.split_ratio}
    for label, filtered in (("filtered", True), ("unfiltered", False)):
        report, wall = run_chain(chain, expected,
                                 faults="kill@job2+0:node=1",
                                 server_split_filter=filtered)
        recompute_bytes = sum(
            n for phase, n in report.shuffle_bytes.items()
            if phase.startswith("recompute-reduce"))
        result[label] = {
            "recompute_reduce_bytes": recompute_bytes,
            "total_shuffle_bytes": report.total_shuffle_bytes,
            "wall_s": round(wall, 3),
        }
    result["bytes_ratio"] = round(
        result["filtered"]["recompute_reduce_bytes"]
        / max(1, result["unfiltered"]["recompute_reduce_bytes"]), 4)
    return result


def pipeline_ab(chain: LocalJobConfig, expected: str, repeat: int,
                faults: str = "") -> dict:
    """Serial vs pipelined data plane on the same chain, best-of-N.
    ``faults`` adds a kill so the comparison covers the recovery hot
    path (split recomputation) as well as the failure-free chain."""
    planes = {
        "serial": dict(task_slots=1, fetch_parallelism=1,
                       persistent_connections=False,
                       server_split_filter=False),
        "pipelined": dict(task_slots=4, fetch_parallelism=4,
                          persistent_connections=True,
                          server_split_filter=True),
    }
    result = {}
    for label, knobs in planes.items():
        walls = []
        for _ in range(repeat):
            report, _outer = run_chain(chain, expected, faults=faults,
                                       **knobs)
            walls.append(report.wall_time)
        result[label] = {
            "wall_s": round(min(walls), 3),
            "walls_s": [round(w, 3) for w in walls],
            "total_shuffle_bytes": report.total_shuffle_bytes,
            "knobs": knobs,
        }
    result["speedup"] = round(result["serial"]["wall_s"]
                              / result["pipelined"]["wall_s"], 3)
    return result


def main() -> int:
    args = parse_args()
    records = 96 if args.check else args.records
    value_size = 32 if args.check else args.value_size
    repeat = 2 if args.check else args.repeat
    chain = LocalJobConfig(n_jobs=args.jobs,
                           n_partitions=args.partitions,
                           records_per_node=records,
                           records_per_block=16,
                           value_size=value_size,
                           split_ratio=2, seed=0)
    expected = reference_checksum(chain)

    split = split_filter_ab(chain, expected)
    k = split["split_ratio"]
    print(f"split-filter: filtered "
          f"{split['filtered']['recompute_reduce_bytes']}B vs unfiltered "
          f"{split['unfiltered']['recompute_reduce_bytes']}B "
          f"(ratio {split['bytes_ratio']}, target <= "
          f"{round((1 + SPLIT_EPS) / k, 3)})")

    pipe = pipeline_ab(chain, expected, repeat)
    print(f"pipeline (clean): serial {pipe['serial']['wall_s']}s vs "
          f"pipelined {pipe['pipelined']['wall_s']}s "
          f"(speedup {pipe['speedup']}x, margin {WALL_MARGIN})")
    pipe_kill = pipeline_ab(chain, expected, repeat,
                            faults="kill@job2+0:node=1")
    print(f"pipeline (kill):  serial {pipe_kill['serial']['wall_s']}s vs "
          f"pipelined {pipe_kill['pipelined']['wall_s']}s "
          f"(speedup {pipe_kill['speedup']}x)")

    payload = {
        "chain": {"jobs": args.jobs, "partitions": args.partitions,
                  "records_per_node": records, "value_size": value_size,
                  "nodes": 4, "split_ratio": k},
        "check_mode": args.check,
        "cpu_count": os.cpu_count(),
        "split_filter": split,
        "pipeline": pipe,
        "pipeline_with_kill": pipe_kill,
    }
    write_payload(payload, "BENCH_shuffle.json", args.out)

    failures = []
    if split["bytes_ratio"] > (1 + SPLIT_EPS) / k:
        failures.append(
            f"split filtering shipped {split['bytes_ratio']} of the "
            f"unfiltered bytes (allowed {(1 + SPLIT_EPS) / k:.3f})")
    best_speedup = max(pipe["speedup"], pipe_kill["speedup"])
    if args.check and best_speedup * WALL_MARGIN < 1.0:
        failures.append(
            f"pipelined plane too slow: best speedup {best_speedup}x "
            f"(clean {pipe['speedup']}x, kill {pipe_kill['speedup']}x, "
            f"margin {WALL_MARGIN})")
    return finish(failures)


if __name__ == "__main__":
    raise SystemExit(main())
